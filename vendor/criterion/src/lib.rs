//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! as a plain timing harness: each benchmark runs a short warm-up, then a
//! fixed number of timed samples, and the mean/min per-iteration times are
//! printed. No statistics, no HTML reports, no comparisons to baselines.
//!
//! Two environment hooks support CI:
//! - `DSW_BENCH_QUICK=1` caps every benchmark at 3 samples (smoke-speed
//!   runs on shared runners).
//! - `DSW_BENCH_JSON=<path>` appends each result to a JSON array at
//!   `<path>` (`{"group","id","mean_s","min_s","samples"}` per entry).
//!   Delete the file before a run to start a fresh array.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Applies the `DSW_BENCH_QUICK` sample cap.
fn effective_samples(n: usize) -> usize {
    match std::env::var("DSW_BENCH_QUICK") {
        Ok(v) if !v.is_empty() && v != "0" => n.min(3),
        _ => n,
    }
}

/// Appends one result to the `DSW_BENCH_JSON` array, if requested.
///
/// The file is kept a valid JSON array after every append by rewriting the
/// closing bracket; benches are sequential so there is no write race.
fn record_json(group: &str, id: &str, mean_s: f64, min_s: f64, samples: usize) {
    let Some(path) = std::env::var_os("DSW_BENCH_JSON") else {
        return;
    };
    let entry = format!(
        "{{\"group\":\"{group}\",\"id\":\"{id}\",\"mean_s\":{mean_s:.9},\
         \"min_s\":{min_s:.9},\"samples\":{samples}}}"
    );
    append_json_entry(std::path::Path::new(&path), &entry);
}

/// Records a scalar metric (not a timing) into the `DSW_BENCH_JSON` array,
/// if requested: `{"group","id","value"}`. Benches use this for metadata a
/// downstream gate needs alongside the timings — worker counts, ratios,
/// breakdown nanoseconds.
pub fn record_metric(group: &str, id: &str, value: f64) {
    let Some(path) = std::env::var_os("DSW_BENCH_JSON") else {
        return;
    };
    let entry = format!("{{\"group\":\"{group}\",\"id\":\"{id}\",\"value\":{value:.9}}}");
    append_json_entry(std::path::Path::new(&path), &entry);
}

/// Appends `entry` to the JSON array at `path`, creating it if needed.
fn append_json_entry(path: &std::path::Path, entry: &str) {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let body = existing.trim();
    let new = match body.strip_suffix(']') {
        Some(head) if !head.trim().is_empty() => {
            format!("{},\n  {entry}\n]\n", head.trim_end())
        }
        _ => format!("[\n  {entry}\n]\n"),
    };
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(path, new) {
        eprintln!("criterion shim: cannot write {}: {e}", path.display());
    }
}

/// Declared throughput of a benchmark (accepted, echoed in the report).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration of the last `iter` call.
    last_mean: f64,
    /// Fastest single iteration of the last `iter` call.
    last_min: f64,
}

impl Bencher {
    /// Times `f`: warm-up once, then `samples` timed iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std_black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last_mean = total.as_secs_f64() / self.samples as f64;
        self.last_min = min.as_secs_f64();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares the group's throughput (echoed in the report line).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: effective_samples(self.samples),
            last_mean: 0.0,
            last_min: 0.0,
        };
        f(&mut b);
        record_json(&self.name, id, b.last_mean, b.last_min, b.samples);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.last_mean > 0.0 => {
                format!("  ({:.3e} elem/s)", n as f64 / b.last_mean)
            }
            Some(Throughput::Bytes(n)) if b.last_mean > 0.0 => {
                format!("  ({:.3e} B/s)", n as f64 / b.last_mean)
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: mean {:.6} s, min {:.6} s over {} samples{rate}",
            self.name, b.last_mean, b.last_min, b.samples
        );
        self
    }

    /// Ends the group (no-op; matches the criterion API).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            samples: 10,
            throughput: None,
            _parent: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        // warm-up + 3 samples
        assert_eq!(count, 4);
    }

    criterion_group!(group_runs, trivial);

    #[test]
    fn harness_executes_closures() {
        group_runs();
    }

    #[test]
    fn json_appender_keeps_a_valid_array() {
        let path = std::env::temp_dir().join("dsw-criterion-shim-test.json");
        let _ = std::fs::remove_file(&path);
        append_json_entry(&path, "{\"id\":\"a\",\"mean_s\":0.5}");
        append_json_entry(&path, "{\"id\":\"b\",\"mean_s\":0.25}");
        let text = std::fs::read_to_string(&path).unwrap();
        let body = text.trim();
        assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
        assert_eq!(body.matches("\"id\"").count(), 2);
        assert_eq!(body.matches("},").count(), 1, "exactly one separator: {body}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn quick_cap_respects_env_contract() {
        // Can't mutate the process env safely under a parallel test
        // harness; exercise the cap arithmetic both ways instead.
        assert!(effective_samples(100) <= 100);
        assert!(effective_samples(2) <= 2);
    }
}
