//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! as a plain timing harness: each benchmark runs a short warm-up, then a
//! fixed number of timed samples, and the mean/min per-iteration times are
//! printed. No statistics, no HTML reports, no comparisons to baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared throughput of a benchmark (accepted, echoed in the report).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration of the last `iter` call.
    last_mean: f64,
    /// Fastest single iteration of the last `iter` call.
    last_min: f64,
}

impl Bencher {
    /// Times `f`: warm-up once, then `samples` timed iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std_black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.last_mean = total.as_secs_f64() / self.samples as f64;
        self.last_min = min.as_secs_f64();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares the group's throughput (echoed in the report line).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            last_mean: 0.0,
            last_min: 0.0,
        };
        f(&mut b);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.last_mean > 0.0 => {
                format!("  ({:.3e} elem/s)", n as f64 / b.last_mean)
            }
            Some(Throughput::Bytes(n)) if b.last_mean > 0.0 => {
                format!("  ({:.3e} B/s)", n as f64 / b.last_mean)
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: mean {:.6} s, min {:.6} s over {} samples{rate}",
            self.name, b.last_mean, b.last_min, b.samples
        );
        self
    }

    /// Ends the group (no-op; matches the criterion API).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".to_string(),
            samples: 10,
            throughput: None,
            _parent: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut count = 0u64;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        // warm-up + 3 samples
        assert_eq!(count, 4);
    }

    criterion_group!(group_runs, trivial);

    #[test]
    fn harness_executes_closures() {
        group_runs();
    }
}
