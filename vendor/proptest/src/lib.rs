//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot fetch crates, so this implements the subset
//! of proptest's API the workspace's property tests use: the `proptest!`
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! range and tuple strategies, `prop_map`, `Just`, `proptest::collection::vec`,
//! and `ProptestConfig::with_cases`. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name), so failures are
//! reproducible. **No shrinking**: a failing case panics with the generated
//! inputs left to the assertion message.

/// Why a generated case did not count.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — generate another.
    Reject,
}

/// Runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic test RNG.
pub mod test_runner {
    /// xorshift64* generator seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from an arbitrary string (FNV-1a), so every test gets its
        /// own reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(h | 1)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform double in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform draw from `[lo, hi)`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of an associated type (subset of proptest's
    /// `Strategy`; no shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }
    int_strategy!(usize, u64, u32, u8, i64, i32);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (hi - lo) * rng.unit_f64()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy of `len` elements drawn from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Asserts inside a `proptest!` body; panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            panic!($($fmt)*);
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            panic!(
                "prop_assert_eq failed: {:?} != {:?}",
                left, right
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            panic!($($fmt)*);
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            panic!("prop_assert_ne failed: both {:?}", left);
        }
    }};
}

/// Rejects the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(50).saturating_add(1000),
                        "prop_assume rejected too many cases"
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    }
                }
            }
        )*
    };
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn vec_respects_size_range(v in collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn prop_map_composes(n in (1usize..4).prop_map(|k| k * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_test("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
