//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements only `crossbeam::thread::scope` — the one API this workspace
//! uses — on top of `std::thread::scope` (stable since Rust 1.63). The
//! crossbeam signature returns `Err` when a spawned thread panicked, where
//! std re-raises; a `catch_unwind` bridges the two.

/// Scoped threads (subset of `crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error of a scope whose worker panicked.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle that can spawn borrowing threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// matching crossbeam's `spawn(|scope| ...)` signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            })
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller.
    /// Returns `Err` with the panic payload if any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut out = vec![0u64; 4];
        thread::scope(|s| {
            for (chunk, d) in out.chunks_mut(2).zip(data.chunks(2)) {
                s.spawn(move |_| {
                    for (o, v) in chunk.iter_mut().zip(d) {
                        *o = v * 10;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("worker died"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_the_scope_handle() {
        let r = thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| 21u64);
                21u64
            });
        });
        assert!(r.is_ok());
    }
}
