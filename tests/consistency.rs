//! Cross-crate consistency: the distributed solvers must agree with their
//! shared-memory definitions, with each other, and across execution modes.

use distributed_southwell::core::dist::{
    distribute, gather_r, gather_x, run_method, DistOptions, ExecBackend, Method,
};
use distributed_southwell::core::scalar::{self, ScalarOptions};
use distributed_southwell::partition::{
    partition_multilevel, partition_strip, Graph, MultilevelOptions, Partition,
};
use distributed_southwell::rma::ExecMode;
use distributed_southwell::sparse::{gen, vecops};

fn unit_problem(
    nx: usize,
    seed: u64,
) -> (distributed_southwell::sparse::CsrMatrix, Vec<f64>, Vec<f64>) {
    let mut a = gen::grid2d_poisson(nx, nx);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, seed);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    (a, b, x0)
}

#[test]
fn block_jacobi_single_rank_equals_gauss_seidel_sweeps() {
    let (a, b, x0) = unit_problem(12, 1);
    let n = a.nrows();
    let part = partition_strip(n, 1);
    let opts = DistOptions {
        max_steps: 5,
        target_residual: None,
        ..DistOptions::default()
    };
    let rep = run_method(Method::BlockJacobi, &a, &b, &x0, &part, &opts);
    let sopts = ScalarOptions {
        max_relaxations: 5 * n as u64,
        target_residual: None,
        record_stride: n as u64,
        seed: 0,
    };
    let (xs, _) = scalar::gauss_seidel(&a, &b, &x0, &sopts);
    for (d, s) in rep.x.iter().zip(&xs) {
        assert!((d - s).abs() < 1e-13, "{d} vs {s}");
    }
}

#[test]
fn singleton_partition_parallel_southwell_equals_scalar_form() {
    // One row per rank makes block PS mathematically identical to the
    // scalar Parallel Southwell iteration.
    let (a, b, x0) = unit_problem(6, 2);
    let n = a.nrows();
    let part = partition_strip(n, n);
    let opts = DistOptions {
        max_steps: 12,
        target_residual: None,
        ..DistOptions::default()
    };
    let rep = run_method(Method::ParallelSouthwell, &a, &b, &x0, &part, &opts);

    // Scalar PS for exactly the same number of parallel steps.
    let mut x = x0.clone();
    for _ in 0..12 {
        let r = a.residual(&b, &x);
        let sel = scalar::southwell_par::southwell_selection(&a, &r);
        for &i in &sel {
            x[i] += r[i] / a.get(i, i);
        }
    }
    for (d, s) in rep.x.iter().zip(&x) {
        assert!((d - s).abs() < 1e-12, "{d} vs {s}");
    }
}

#[test]
fn maintained_residuals_match_true_residuals_for_all_methods() {
    let (a, b, x0) = unit_problem(16, 3);
    let n = a.nrows();
    let part = partition_multilevel(&Graph::from_matrix(&a), 8, MultilevelOptions::default());
    for m in [Method::ParallelSouthwell, Method::DistributedSouthwell] {
        let locals = distribute(&a, &b, &x0, &part).unwrap();
        drop(locals);
        let opts = DistOptions {
            max_steps: 15,
            target_residual: None,
            ..DistOptions::default()
        };
        let rep = run_method(m, &a, &b, &x0, &part, &opts);
        // The driver's per-step residual record is computed from gathered x
        // against the global matrix; verify the last record agrees with a
        // fresh evaluation of ‖b − Ax‖ for the returned solution.
        let check = vecops::norm2(&a.residual(&b, &rep.x));
        let recorded = rep.final_residual();
        assert!(
            (check - recorded).abs() <= 1e-12 * check.max(1.0),
            "{m:?}: recorded {recorded} vs fresh {check}"
        );
        let _ = n;
    }
}

#[test]
fn gather_scatter_roundtrip() {
    let (a, b, x0) = unit_problem(10, 4);
    let n = a.nrows();
    let part = partition_multilevel(&Graph::from_matrix(&a), 5, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    assert_eq!(gather_x(&locals, n), x0);
    let r_true = a.residual(&b, &x0);
    let r = gather_r(&locals, n);
    for (m, t) in r.iter().zip(&r_true) {
        assert!((m - t).abs() < 1e-13);
    }
}

#[test]
fn threaded_execution_is_bit_identical_for_every_method() {
    let (a, b, x0) = unit_problem(16, 5);
    let part = partition_multilevel(&Graph::from_matrix(&a), 6, MultilevelOptions::default());
    for m in [
        Method::BlockJacobi,
        Method::ParallelSouthwell,
        Method::DistributedSouthwell,
    ] {
        let seq = DistOptions {
            max_steps: 15,
            target_residual: None,
            ..DistOptions::default()
        };
        let thr = DistOptions {
            backend: ExecBackend::Superstep(ExecMode::Threaded(3)),
            ..seq
        };
        let r1 = run_method(m, &a, &b, &x0, &part, &seq);
        let r2 = run_method(m, &a, &b, &x0, &part, &thr);
        assert_eq!(r1.x, r2.x, "{m:?} differs across exec modes");
        assert_eq!(
            r1.records.last().unwrap().msgs,
            r2.records.last().unwrap().msgs
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let (a, b, x0) = unit_problem(14, 6);
    let part = partition_multilevel(&Graph::from_matrix(&a), 7, MultilevelOptions::default());
    let opts = DistOptions::default();
    let r1 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
    let r2 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
    assert_eq!(r1.x, r2.x);
    assert_eq!(r1.records.len(), r2.records.len());
    assert_eq!(r1.stats.msgs_per_rank, r2.stats.msgs_per_rank);
}

#[test]
fn partition_shape_does_not_change_correctness() {
    // Different partitions change the iteration path but every one must
    // still converge to the solution (x = 0 here since b = 0).
    let (a, b, x0) = unit_problem(12, 7);
    let n = a.nrows();
    for part in [
        partition_strip(n, 4),
        partition_strip(n, 9),
        partition_multilevel(&Graph::from_matrix(&a), 6, MultilevelOptions::default()),
    ] {
        let opts = DistOptions {
            max_steps: 600,
            target_residual: Some(1e-8),
            ..DistOptions::default()
        };
        let rep = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        assert!(
            rep.converged_at.is_some(),
            "partition {:?} failed to converge",
            part.sizes()
        );
    }
}

#[test]
fn empty_partition_part_is_rejected() {
    let (a, b, x0) = unit_problem(4, 8);
    // A hand-built partition with an empty part 1.
    let assignment = vec![0usize; a.nrows()];
    let part = Partition::new(2, assignment);
    assert!(distribute(&a, &b, &x0, &part).is_err());
}
