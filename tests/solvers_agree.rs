//! Cross-solver agreement: the direct solver, conjugate gradients,
//! geometric multigrid, and the Southwell family must all find the same
//! solution of the same system — and reordering the unknowns must not
//! change it.

use distributed_southwell::core::scalar::{self, ScalarOptions};
use distributed_southwell::multigrid::{Multigrid, Smoother};
use distributed_southwell::sparse::dense::Cholesky;
use distributed_southwell::sparse::krylov::{conjugate_gradient, CgOptions};
use distributed_southwell::sparse::reorder::reverse_cuthill_mckee;
use distributed_southwell::sparse::{gen, vecops};

fn err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt()
}

#[test]
fn direct_cg_multigrid_and_southwell_agree() {
    let dim = 15;
    let a = gen::grid2d_poisson(dim, dim);
    let n = a.nrows();
    let b = gen::random_rhs(n, 33);

    let x_direct = Cholesky::factor_csr(&a).unwrap().solve(&b);
    let x_cg = conjugate_gradient(
        &a,
        &b,
        &vec![0.0; n],
        &CgOptions {
            max_iters: 2000,
            rel_tolerance: 1e-12,
        },
    )
    .x;
    let (x_mg, _) = Multigrid::new(dim, Smoother::gauss_seidel(1.0)).solve(&b, 25);
    let opts = ScalarOptions {
        max_relaxations: 5000 * n as u64,
        target_residual: Some(1e-12),
        record_stride: n as u64,
        seed: 0,
    };
    let x_ds = scalar::distributed_southwell_scalar(&a, &b, &vec![0.0; n], &opts).x;

    assert!(
        err(&x_cg, &x_direct) < 1e-9,
        "CG vs direct: {}",
        err(&x_cg, &x_direct)
    );
    assert!(
        err(&x_mg, &x_direct) < 1e-9,
        "MG vs direct: {}",
        err(&x_mg, &x_direct)
    );
    assert!(
        err(&x_ds, &x_direct) < 1e-9,
        "DS vs direct: {}",
        err(&x_ds, &x_direct)
    );
}

#[test]
fn rcm_reordering_preserves_the_solution() {
    let a = gen::grid2d_poisson(10, 10);
    let n = a.nrows();
    let b = gen::random_rhs(n, 34);
    let x = Cholesky::factor_csr(&a).unwrap().solve(&b);

    let perm = reverse_cuthill_mckee(&a);
    let ap = perm.apply_symmetric(&a).unwrap();
    let bp = perm.apply_vec(&b);
    let xp = Cholesky::factor_csr(&ap).unwrap().solve(&bp);
    // Mapping the permuted solution back recovers the original.
    let back = perm.apply_vec_inverse(&xp);
    assert!(err(&back, &x) < 1e-10, "error {}", err(&back, &x));
}

#[test]
fn southwell_on_rcm_reordered_matrix_converges_identically_well() {
    // The Southwell criterion is ordering-aware only through tie-breaks;
    // reordering must not change the convergence *quality*.
    let a = gen::grid2d_poisson(10, 10);
    let n = a.nrows();
    let b = gen::random_rhs(n, 35);
    let opts = ScalarOptions {
        max_relaxations: 3 * n as u64,
        target_residual: None,
        record_stride: 1,
        seed: 0,
    };
    let (_, h1) = scalar::parallel_southwell(&a, &b, &vec![0.0; n], &opts);

    let perm = reverse_cuthill_mckee(&a);
    let ap = perm.apply_symmetric(&a).unwrap();
    let bp = perm.apply_vec(&b);
    let (_, h2) = scalar::parallel_southwell(&ap, &bp, &vec![0.0; n], &opts);
    // Same budget, same ballpark result (tie-breaking differs slightly).
    assert!(
        (h1.final_residual - h2.final_residual).abs()
            < 0.5 * h1.final_residual.max(h2.final_residual),
        "reordering changed convergence too much: {} vs {}",
        h1.final_residual,
        h2.final_residual
    );
}

#[test]
fn cg_beats_stationary_methods_on_iterations_to_high_accuracy() {
    // Sanity: the reference Krylov solver is the right gold standard.
    let a = gen::grid2d_poisson(20, 20);
    let n = a.nrows();
    let b = gen::random_rhs(n, 36);
    let cg = conjugate_gradient(
        &a,
        &b,
        &vec![0.0; n],
        &CgOptions {
            max_iters: 10_000,
            rel_tolerance: 1e-10,
        },
    );
    assert!(cg.converged);
    let cg_sweep_equivalents = cg.residual_history.len(); // one spmv each
    let opts = ScalarOptions {
        max_relaxations: 2000 * n as u64,
        target_residual: Some(1e-10 * vecops::norm2(&b)),
        record_stride: n as u64,
        seed: 0,
    };
    let (_, gs) = scalar::gauss_seidel(&a, &b, &vec![0.0; n], &opts);
    let gs_sweeps = gs.total_relaxations / n as u64;
    assert!(
        (cg_sweep_equivalents as u64) < gs_sweeps,
        "CG {} sweeps !< GS {} sweeps",
        cg_sweep_equivalents,
        gs_sweeps
    );
}
