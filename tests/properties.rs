//! Property-based tests (proptest) on the core data structures and the
//! solver invariants, over randomized matrices, vectors, and partitions.

use distributed_southwell::core::dist::{run_method, DistOptions, Method};
use distributed_southwell::core::scalar::{self, ScalarOptions};
use distributed_southwell::partition::{
    greedy_coloring_bfs, partition_multilevel, Graph, MultilevelOptions,
};
use distributed_southwell::sparse::{gen, io, vecops, CooBuilder, CsrMatrix};
use proptest::prelude::*;

/// Strategy: a random SPD clique-assembled matrix on a small 2D grid.
fn spd_matrix() -> impl Strategy<Value = CsrMatrix> {
    (3usize..9, 3usize..9, 0.05f64..0.9, 0u64..1000).prop_map(|(nx, ny, c, seed)| {
        let mut a = gen::clique_grid2d(
            nx,
            ny,
            gen::CliqueOptions {
                coupling: c,
                weight_jump: 0.3,
                hot_fraction: 0.0,
                hot_coupling: 0.0,
                seed,
            },
        );
        a.scale_unit_diagonal().unwrap();
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coo_builder_matches_dense_accumulation(
        entries in proptest::collection::vec((0usize..6, 0usize..6, -2.0f64..2.0), 0..40)
    ) {
        let mut builder = CooBuilder::new(6, 6);
        let mut dense = vec![0.0f64; 36];
        for &(i, j, v) in &entries {
            builder.push(i, j, v);
            dense[i * 6 + j] += v;
        }
        let a = builder.build().unwrap();
        for i in 0..6 {
            for j in 0..6 {
                prop_assert!((a.get(i, j) - dense[i * 6 + j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transpose_is_involution_and_preserves_spmv_adjoint(
        entries in proptest::collection::vec((0usize..5, 0usize..7, -1.0f64..1.0), 1..25),
        x in proptest::collection::vec(-1.0f64..1.0, 7),
        y in proptest::collection::vec(-1.0f64..1.0, 5),
    ) {
        let mut b = CooBuilder::new(5, 7);
        for &(i, j, v) in &entries {
            b.push(i, j, v);
        }
        let a = b.build().unwrap();
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        // <Ax, y> == <x, A^T y>
        let lhs = vecops::dot(&a.mul_vec(&x), &y);
        let rhs = vecops::dot(&x, &a.transpose().mul_vec(&y));
        prop_assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn matrix_market_roundtrip(a in spd_matrix()) {
        let mut buf = Vec::new();
        io::write_matrix_market(&a, &mut buf).unwrap();
        let b = io::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(a.nrows(), b.nrows());
        prop_assert_eq!(a.nnz(), b.nnz());
        for i in 0..a.nrows() {
            for (j, v) in a.row(i) {
                prop_assert!((b.get(i, j) - v).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn coloring_is_always_proper(a in spd_matrix()) {
        let g = Graph::from_matrix(&a);
        let c = greedy_coloring_bfs(&g);
        prop_assert!(c.is_proper(&g));
        prop_assert!(c.ncolors >= 1);
        prop_assert_eq!(c.class_sizes().iter().sum::<usize>(), g.nvertices());
    }

    #[test]
    fn partitions_are_complete_and_nonempty(a in spd_matrix(), p in 2usize..6) {
        let g = Graph::from_matrix(&a);
        let nparts = p.min(g.nvertices());
        let part = partition_multilevel(&g, nparts, MultilevelOptions::default());
        prop_assert!(part.all_parts_nonempty());
        prop_assert_eq!(part.assignment().len(), g.nvertices());
    }

    #[test]
    fn southwell_selection_is_independent(a in spd_matrix(), seed in 0u64..500) {
        let n = a.nrows();
        let x = gen::random_guess(n, seed);
        let r = a.residual(&vec![0.0; n], &x);
        let sel = scalar::southwell_par::southwell_selection(&a, &r);
        for &i in &sel {
            for (j, _) in a.row(i) {
                if j != i {
                    prop_assert!(!sel.contains(&j), "coupled {i},{j} both selected");
                }
            }
        }
    }

    #[test]
    fn gauss_seidel_never_increases_energy_norm(a in spd_matrix(), seed in 0u64..500) {
        // For SPD systems every exact row relaxation decreases the energy
        // norm of the error; with b = 0 the error is x itself.
        let n = a.nrows();
        let x0 = gen::random_guess(n, seed);
        let b = vec![0.0; n];
        let energy = |x: &[f64]| vecops::dot(&a.mul_vec(x), x);
        let opts = ScalarOptions {
            max_relaxations: n as u64,
            target_residual: None,
            record_stride: u64::MAX,
            seed: 0,
        };
        let (x1, _) = scalar::gauss_seidel(&a, &b, &x0, &opts);
        prop_assert!(energy(&x1) <= energy(&x0) * (1.0 + 1e-12));
    }

    #[test]
    fn distributed_southwell_never_deadlocks(a in spd_matrix(), seed in 0u64..500, p in 2usize..5) {
        let n = a.nrows();
        let b = vec![0.0; n];
        let mut x0 = gen::random_guess(n, seed);
        let nrm = vecops::norm2(&a.residual(&b, &x0));
        prop_assume!(nrm > 0.0);
        x0.iter_mut().for_each(|v| *v /= nrm);
        let g = Graph::from_matrix(&a);
        let nparts = p.min(n);
        let part = partition_multilevel(&g, nparts, MultilevelOptions::default());
        let opts = DistOptions {
            max_steps: 200,
            target_residual: Some(0.05),
            ..DistOptions::default()
        };
        let rep = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        prop_assert!(!rep.deadlocked, "deadlocked at residual {}", rep.final_residual());
        prop_assert!(rep.converged_at.is_some(),
            "no convergence: final {}", rep.final_residual());
    }

    #[test]
    fn ds_and_ps_relaxation_counts_are_sane(a in spd_matrix(), seed in 0u64..100) {
        let n = a.nrows();
        let b = vec![0.0; n];
        let mut x0 = gen::random_guess(n, seed);
        let nrm = vecops::norm2(&a.residual(&b, &x0));
        prop_assume!(nrm > 0.0);
        x0.iter_mut().for_each(|v| *v /= nrm);
        let g = Graph::from_matrix(&a);
        let part = partition_multilevel(&g, 3.min(n), MultilevelOptions::default());
        let opts = DistOptions {
            max_steps: 20,
            target_residual: None,
            ..DistOptions::default()
        };
        for m in [Method::ParallelSouthwell, Method::DistributedSouthwell] {
            let rep = run_method(m, &a, &b, &x0, &part, &opts);
            let last = rep.records.last().unwrap();
            // Every step relaxes at most all rows, at least zero; counters
            // are monotone.
            prop_assert!(last.relaxations <= 20 * n as u64);
            for w in rep.records.windows(2) {
                prop_assert!(w[1].relaxations >= w[0].relaxations);
                prop_assert!(w[1].msgs >= w[0].msgs);
                prop_assert!(w[1].time >= w[0].time);
            }
        }
    }
}
