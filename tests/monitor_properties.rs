//! Property tests for the incremental convergence monitor: the `O(P)`
//! maintained global norm must agree with the exact `‖b − Ax‖₂` at every
//! superstep boundary on a reliable link, and in `Maintained` mode the
//! driver must never *declare* convergence that an exact recompute would
//! not confirm — even under chaos (drops and duplicates), where the
//! maintained norms genuinely drift.

use distributed_southwell::core::dist::{
    distribute, run_method, BlockJacobiRank, DistOptions, DistributedSouthwellRank, DsConfig,
    LocalSystem, Method, Monitor, MonitorMode, ParallelSouthwellRank,
};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::rma::{ChaosConfig, CostModel, ExecMode, Executor, RankAlgorithm};
use distributed_southwell::sparse::{gen, vecops, CsrMatrix};
use proptest::prelude::*;
use proptest::TestCaseError;

/// A small random SPD clique-assembled system with a random guess.
fn random_problem(
    nx: usize,
    ny: usize,
    coupling: f64,
    seed: u64,
) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let mut a = gen::clique_grid2d(
        nx,
        ny,
        gen::CliqueOptions {
            coupling,
            weight_jump: 0.3,
            hot_fraction: 0.0,
            hot_coupling: 0.0,
            seed,
        },
    );
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = gen::random_rhs(n, seed ^ 0x5eed);
    let x0 = gen::random_guess(n, seed ^ 0x9e37);
    (a, b, x0)
}

/// Steps an executor and checks, at every superstep boundary, that the
/// maintained norm agrees with the exact recompute to 1e-10 relative and
/// that the reliable-link slack is exactly zero.
fn assert_agreement<A: RankAlgorithm>(
    a: &CsrMatrix,
    b: &[f64],
    ranks: Vec<A>,
    mode: ExecMode,
    steps: usize,
    local_of: impl Fn(&A) -> &LocalSystem,
) -> Result<(), TestCaseError> {
    let mut ex = Executor::new(ranks, CostModel::default(), mode);
    let mut mon = Monitor::new(a, b);
    for step in 0..steps {
        ex.step();
        let m = mon
            .maintained(ex.ranks())
            .expect("method maintains local norms");
        let e = mon.exact(ex.ranks(), &local_of);
        prop_assert_eq!(m.slack, 0.0, "no parked deltas without a threshold");
        prop_assert!(
            (m.norm - e).abs() <= 1e-10 * e.max(1.0),
            "step {}: maintained {} vs exact {} (gap {:.3e})",
            step,
            m.norm,
            e,
            (m.norm - e).abs()
        );
    }
    Ok(())
}

proptest! {
    // Each case runs six executors (3 methods × 2 exec modes).
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn maintained_norm_matches_exact_on_reliable_link(
        nx in 3usize..8,
        ny in 3usize..8,
        coupling in 0.05f64..0.7,
        seed in 0u64..1000,
        nranks in 2usize..7,
        steps in 1usize..10,
    ) {
        let (a, b, x0) = random_problem(nx, ny, coupling, seed);
        let part =
            partition_multilevel(&Graph::from_matrix(&a), nranks, MultilevelOptions::default());
        for mode in [ExecMode::Sequential, ExecMode::Threaded(4)] {
            let locals = distribute(&a, &b, &x0, &part).unwrap();
            let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
            let r0 = a.residual(&b, &x0);
            assert_agreement(
                &a,
                &b,
                DistributedSouthwellRank::build(locals, &norms, &r0),
                mode,
                steps,
                |r: &DistributedSouthwellRank| &r.ls,
            )?;
            let locals = distribute(&a, &b, &x0, &part).unwrap();
            let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
            assert_agreement(
                &a,
                &b,
                ParallelSouthwellRank::build(locals, &norms),
                mode,
                steps,
                |r: &ParallelSouthwellRank| &r.ls,
            )?;
            let locals = distribute(&a, &b, &x0, &part).unwrap();
            assert_agreement(
                &a,
                &b,
                BlockJacobiRank::build(locals),
                mode,
                steps,
                |r: &BlockJacobiRank| &r.ls,
            )?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The verified-convergence invariant: under arbitrary drop/duplicate
    /// chaos the maintained norms drift (lost deltas leave `r`
    /// inconsistent with `b − Ax`), but `Maintained` mode may only ever
    /// *declare* convergence after an exact recompute confirms it — so
    /// whenever `converged_at` is set, the true residual of the reported
    /// solution is at (or below) the target.
    #[test]
    fn maintained_mode_never_declares_unverified_convergence(
        drop_rate in 0.0f64..0.25,
        duplicate_rate in 0.0f64..0.25,
        chaos_seed in 0u64..500,
        verify_every in 0usize..6,
        threshold_on in 0usize..2,
    ) {
        let threshold = if threshold_on == 1 { 0.9 } else { 0.0 };
        let mut a = gen::grid2d_poisson(12, 12);
        a.scale_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = vec![0.0; n];
        let mut x0 = gen::random_guess(n, 7);
        let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
        x0.iter_mut().for_each(|v| *v *= s);
        let part =
            partition_multilevel(&Graph::from_matrix(&a), 12, MultilevelOptions::default());
        let target = 0.05;
        let opts = DistOptions {
            max_steps: 60,
            target_residual: Some(target),
            monitor: MonitorMode::Maintained { verify_every },
            chaos: ChaosConfig {
                drop_rate,
                duplicate_rate,
                seed: chaos_seed,
                ..ChaosConfig::none()
            },
            ds_config: DsConfig {
                solve_msg_threshold: threshold,
                ..DsConfig::default()
            },
            ..DistOptions::default()
        };
        let rep = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        if let Some(step) = rep.converged_at {
            let true_norm = vecops::norm2(&a.residual(&b, &rep.x));
            prop_assert!(
                true_norm <= target * (1.0 + 1e-9),
                "declared convergence at step {} but true ‖b−Ax‖ = {} > {}",
                step,
                true_norm,
                target
            );
            prop_assert!(
                (rep.final_residual() - true_norm).abs() <= 1e-12 * true_norm.max(1.0),
                "final record {} is not the verified exact norm {}",
                rep.final_residual(),
                true_norm
            );
        }
    }
}

/// Chaos off, default `verify_every`: `Maintained` mode must report the
/// same convergence step, the same (bit-identical) verified final
/// residual, and the same solution as `Exact` mode — the acceptance
/// criterion that the monitoring strategy never changes *results*, only
/// how often the simulator pays for an exact recompute.
#[test]
fn maintained_and_exact_modes_agree_without_chaos() {
    let mut a = gen::grid2d_poisson(20, 20);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, 42);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    let part = partition_multilevel(&Graph::from_matrix(&a), 16, MultilevelOptions::default());
    for method in [
        Method::BlockJacobi,
        Method::ParallelSouthwell,
        Method::DistributedSouthwell,
    ] {
        let run = |monitor: MonitorMode| {
            let opts = DistOptions {
                max_steps: 80,
                target_residual: Some(0.01),
                monitor,
                ..DistOptions::default()
            };
            run_method(method, &a, &b, &x0, &part, &opts)
        };
        let exact = run(MonitorMode::Exact);
        let maintained = run(MonitorMode::default());
        assert_eq!(
            exact.converged_at, maintained.converged_at,
            "{method:?}: convergence step changed"
        );
        assert_eq!(
            exact.final_residual().to_bits(),
            maintained.final_residual().to_bits(),
            "{method:?}: verified final residual changed"
        );
        let xe: Vec<u64> = exact.x.iter().map(|v| v.to_bits()).collect();
        let xm: Vec<u64> = maintained.x.iter().map(|v| v.to_bits()).collect();
        assert_eq!(xe, xm, "{method:?}: solution changed");
        // The whole point: far fewer exact recomputes.
        assert!(
            maintained.monitor_stats().verifications < exact.monitor_stats().verifications,
            "{method:?}: maintained mode did not reduce verifications"
        );
        // Per-rank partial sums round differently than the exact
        // ascending sum, so "drift" on a reliable link is summation
        // round-off, not protocol drift.
        assert!(
            maintained.monitor_stats().max_rel_drift <= 1e-14,
            "{method:?}: real drift on a reliable link: {:e}",
            maintained.monitor_stats().max_rel_drift
        );
    }
}

/// With DS threshold coalescing, parked deltas make the maintained norm
/// drift from the exact one; the reported `slack` must be nonzero at
/// some boundary and the gap stays within a small multiple of it
/// (deltas overlapping on shared boundary rows can inflate the true gap
/// past the root-sum-square slightly, hence the factor).
#[test]
fn threshold_parking_reports_nonzero_slack_bounding_the_gap() {
    let mut a = gen::grid2d_poisson(16, 16);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let x0 = gen::random_guess(n, 5);
    let part = partition_multilevel(&Graph::from_matrix(&a), 16, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);
    let cfg = DsConfig {
        solve_msg_threshold: 0.9,
        ..DsConfig::default()
    };
    let ranks = DistributedSouthwellRank::build_with(locals, &norms, &r0, cfg);
    let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
    let mut mon = Monitor::new(&a, &b);
    let mut saw_slack = false;
    for step in 0..30 {
        ex.step();
        let m = mon.maintained(ex.ranks()).unwrap();
        let e = mon.exact(ex.ranks(), &|r: &DistributedSouthwellRank| &r.ls);
        if m.slack > 0.0 {
            saw_slack = true;
        }
        assert!(
            (m.norm - e).abs() <= 4.0 * m.slack + 1e-10 * e.max(1.0),
            "step {step}: gap {:.3e} not covered by slack {:.3e}",
            (m.norm - e).abs(),
            m.slack
        );
    }
    assert!(saw_slack, "threshold 0.9 never parked a delta in 30 steps");
}
