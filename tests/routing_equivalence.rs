//! Property test for the target-major parallel epoch close: the inboxes a
//! rank observes — every envelope, in order, with source, class, and
//! payload — are **byte-identical** between the reference serial
//! origin-major close (dynamic flat routing, sequential execution) and
//! every other routing/scheduling combination: the reverse-neighbor
//! bucketed path, serial or chunked across the worker pool, under any
//! pool size and grain, with drops, duplicates, delays, and stalls
//! injected. The test program exercises multiple puts per edge, multiple
//! message classes, and both phases of a two-phase step on a 64-rank grid.

use distributed_southwell::rma::{
    ChaosConfig, CloseMode, CommClass, CostModel, Envelope, ExecMode, Executor, PhaseCtx,
    RankAlgorithm, RedundantHost, StepStats,
};
use proptest::prelude::*;

/// A gossiping rank on a `w × h` grid: phase 0 sends a solve update to
/// every 4-neighbor (plus, on a third of the steps, an extra residual
/// message — two puts on the same edge in one epoch); phase 1 sends a
/// recovery message to the first neighbor on alternating steps. Every
/// inbox it ever observes is logged verbatim.
/// One logged inbox: `(phase, [(src, class, payload)])`.
type InboxLog = (usize, Vec<(usize, u8, u64)>);

struct Gossip {
    id: usize,
    w: usize,
    h: usize,
    /// Advertise `put_targets` (switches the executor to bucketed routing).
    declare: bool,
    step: u64,
    log: Vec<InboxLog>,
}

impl Gossip {
    fn neighbors(&self) -> Vec<usize> {
        let (x, y) = (self.id % self.w, self.id / self.w);
        let mut out = Vec::new();
        if x > 0 {
            out.push(self.id - 1);
        }
        if x + 1 < self.w {
            out.push(self.id + 1);
        }
        if y > 0 {
            out.push(self.id - self.w);
        }
        if y + 1 < self.h {
            out.push(self.id + self.w);
        }
        out
    }
}

impl RankAlgorithm for Gossip {
    type Msg = u64;

    fn phases(&self) -> usize {
        2
    }

    fn put_targets(&self) -> Option<Vec<usize>> {
        self.declare.then(|| self.neighbors())
    }

    fn phase(&mut self, phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
        self.log.push((
            phase,
            inbox
                .iter()
                .map(|e| (e.src, e.class as u8, e.payload))
                .collect(),
        ));
        match phase {
            0 => {
                for t in self.neighbors() {
                    let tag = (self.id as u64) << 32 | self.step << 8;
                    ctx.put(t, CommClass::Solve, tag, 16);
                    if (self.id as u64 + self.step).is_multiple_of(3) {
                        ctx.put(t, CommClass::Residual, tag | 1, 8);
                    }
                }
                ctx.add_flops(4);
                ctx.record_relaxations(1);
            }
            _ => {
                if (self.id as u64 + self.step).is_multiple_of(2) {
                    let t = self.neighbors()[0];
                    ctx.put(t, CommClass::Recovery, self.step, 4);
                }
                self.step += 1;
            }
        }
    }
}

/// Everything observable, bitwise-comparable: the full per-rank inbox
/// logs, the per-step deterministic counters, and the fault tallies.
#[derive(Debug, PartialEq)]
struct Observed {
    logs: Vec<Vec<InboxLog>>,
    steps: Vec<StepStats>,
    msgs_per_rank: Vec<u64>,
    faults: (u64, u64, u64, u64),
}

fn run(
    mode: ExecMode,
    close: CloseMode,
    declare: bool,
    grain: Option<usize>,
    chaos: ChaosConfig,
) -> Observed {
    let (w, h) = (8, 8);
    let ranks: Vec<Gossip> = (0..w * h)
        .map(|id| Gossip {
            id,
            w,
            h,
            declare,
            step: 0,
            log: Vec::new(),
        })
        .collect();
    let mut ex = Executor::with_chaos(ranks, CostModel::default(), mode, chaos);
    assert_eq!(ex.has_routing_index(), declare);
    ex.set_close_mode(close);
    ex.set_parallel_close_threshold(0);
    if let Some(g) = grain {
        ex.set_grain(g);
    }
    for _ in 0..8 {
        ex.step();
    }
    let f = ex.stats.total_faults();
    Observed {
        logs: ex.ranks().iter().map(|r| r.log.clone()).collect(),
        steps: ex.stats.steps.clone(),
        msgs_per_rank: ex.stats.msgs_per_rank.clone(),
        faults: (
            f.dropped.total(),
            f.duplicated.total(),
            f.delayed.total(),
            f.stalled_ranks,
        ),
    }
}

proptest! {
    // Each case runs six full 64-rank executors; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_close_inboxes_identical_to_serial_reference(
        drop_rate in 0.0f64..0.25,
        duplicate_rate in 0.0f64..0.25,
        delay_rate in 0.0f64..0.25,
        max_delay_epochs in 1u64..4,
        stall_rate in 0.0f64..0.15,
        seed in 0u64..10_000,
    ) {
        let chaos = ChaosConfig {
            drop_rate,
            duplicate_rate,
            delay_rate,
            max_delay_epochs: max_delay_epochs as usize,
            stall_rate,
            stall_steps: 2,
            seed,
            ..ChaosConfig::none()
        };
        // The reference: dynamic flat routing, closed serially in origin
        // order on the sequential executor.
        let reference = run(ExecMode::Sequential, CloseMode::Serial, false, None, chaos);
        for (mode, close, declare, grain) in [
            // Bucketed routing must match flat routing even fully serial.
            (ExecMode::Sequential, CloseMode::Serial, true, None),
            // The pool-parallel close, across pool sizes and grains.
            (ExecMode::Threaded(3), CloseMode::Parallel, true, None),
            (ExecMode::Threaded(5), CloseMode::Parallel, true, Some(1)),
            (ExecMode::Threaded(2), CloseMode::Auto, true, Some(7)),
            // Flat routing on the pool (close stays serial by construction).
            (ExecMode::Threaded(4), CloseMode::Parallel, false, None),
        ] {
            let other = run(mode, close, declare, grain, chaos);
            prop_assert_eq!(
                &reference,
                &other,
                "{:?} × {:?} (declare {}, grain {:?}) diverged from the serial flat reference",
                mode,
                close,
                declare,
                grain
            );
        }
    }
}

/// Builds the coded 8 × 8 gossip fleet: block `b`'s `Gossip` instances are
/// dealt to cyclic-shift replica sets of factor `r` (shift stride 3), the
/// same shape `dsw-partition`'s `ReplicaMap` produces.
fn coded_ranks(r: usize, declare: bool) -> Vec<RedundantHost<Gossip>> {
    let n = 64usize;
    let replicas: Vec<Vec<u32>> = (0..n as u32)
        .map(|b| (0..r as u32).map(|j| (b + j * 3) % n as u32).collect())
        .collect();
    (0..n)
        .map(|p| {
            let mine: Vec<(usize, Gossip)> = (0..n)
                .filter(|&b| replicas[b].contains(&(p as u32)))
                .map(|b| {
                    (
                        b,
                        Gossip {
                            id: b,
                            w: 8,
                            h: 8,
                            declare,
                            step: 0,
                            log: Vec::new(),
                        },
                    )
                })
                .collect();
            RedundantHost::new(p, replicas.clone(), mine)
        })
        .collect()
}

/// Runs the coded fleet and snapshots every observable: all hosted inner
/// logs (per physical rank, ascending block order), steps, counters.
fn run_coded(
    mode: ExecMode,
    close: CloseMode,
    declare: bool,
    grain: Option<usize>,
    chaos: ChaosConfig,
    r: usize,
) -> Observed {
    let mut ex = Executor::with_chaos(coded_ranks(r, declare), CostModel::default(), mode, chaos);
    assert_eq!(ex.has_routing_index(), declare);
    ex.set_close_mode(close);
    ex.set_parallel_close_threshold(0);
    if let Some(g) = grain {
        ex.set_grain(g);
    }
    for _ in 0..8 {
        ex.step();
    }
    let f = ex.stats.total_faults();
    Observed {
        logs: ex
            .ranks()
            .iter()
            .map(|h| {
                h.solvers()
                    .flat_map(|(_, s)| s.log.iter().cloned())
                    .collect()
            })
            .collect(),
        steps: ex.stats.steps.clone(),
        msgs_per_rank: ex.stats.msgs_per_rank.clone(),
        faults: (
            f.dropped.total(),
            f.duplicated.total(),
            f.delayed.total(),
            f.stalled_ranks,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The `r = 1` redundancy wrapper is *transparent*: identity replica
    /// sets produce byte-identical inner inboxes, per-class counters, and
    /// fault tallies to the unwrapped run — under drops, delays, and
    /// stalls. (Chaos *duplicates* are deliberately excluded: the wrapper's
    /// slot reconciliation absorbs the duplicate copy before the solver
    /// sees it, which is exactly why the driver routes `r = 1` through the
    /// uncoded path.)
    #[test]
    fn coded_r1_wrapper_is_transparent(
        drop_rate in 0.0f64..0.25,
        delay_rate in 0.0f64..0.25,
        max_delay_epochs in 1u64..4,
        stall_rate in 0.0f64..0.15,
        seed in 0u64..10_000,
    ) {
        let chaos = ChaosConfig {
            drop_rate,
            delay_rate,
            max_delay_epochs: max_delay_epochs as usize,
            stall_rate,
            stall_steps: 2,
            seed,
            ..ChaosConfig::none()
        };
        for declare in [false, true] {
            let plain = run(ExecMode::Sequential, CloseMode::Serial, declare, None, chaos);
            let coded = run_coded(ExecMode::Sequential, CloseMode::Serial, declare, None, chaos, 1);
            prop_assert_eq!(
                &plain,
                &coded,
                "r = 1 wrapper not transparent (declare {}, seed {})",
                declare,
                seed
            );
        }
    }

    /// The coded fan-out path (r = 2) is schedule-independent: every
    /// routing/close/pool combination observes byte-identical inner logs
    /// and counters to the serial flat reference, under full chaos
    /// (duplicates included — reconciliation must be deterministic too).
    #[test]
    fn coded_fanout_identical_across_paths(
        drop_rate in 0.0f64..0.25,
        duplicate_rate in 0.0f64..0.25,
        delay_rate in 0.0f64..0.25,
        stall_rate in 0.0f64..0.15,
        seed in 0u64..10_000,
    ) {
        let chaos = ChaosConfig {
            drop_rate,
            duplicate_rate,
            delay_rate,
            max_delay_epochs: 2,
            stall_rate,
            stall_steps: 2,
            seed,
            ..ChaosConfig::none()
        };
        let reference = run_coded(ExecMode::Sequential, CloseMode::Serial, false, None, chaos, 2);
        for (mode, close, declare, grain) in [
            (ExecMode::Sequential, CloseMode::Serial, true, None),
            (ExecMode::Threaded(3), CloseMode::Parallel, true, None),
            (ExecMode::Threaded(2), CloseMode::Auto, true, Some(7)),
            (ExecMode::Threaded(4), CloseMode::Parallel, false, None),
        ] {
            let other = run_coded(mode, close, declare, grain, chaos, 2);
            prop_assert_eq!(
                &reference,
                &other,
                "coded r = 2: {:?} × {:?} (declare {}, grain {:?}) diverged",
                mode,
                close,
                declare,
                grain
            );
        }
    }
}

/// The stall path deserves a deterministic (non-random) anchor: a targeted
/// stall makes inboxes accumulate across phases, which is exactly where
/// the bucketed close's append-to-stalled-target handling must agree with
/// the flat path.
#[test]
fn targeted_stall_accumulation_identical_across_paths() {
    let mk = |mode, close, declare| {
        let (w, h) = (8, 8);
        let ranks: Vec<Gossip> = (0..w * h)
            .map(|id| Gossip {
                id,
                w,
                h,
                declare,
                step: 0,
                log: Vec::new(),
            })
            .collect();
        let mut ex = Executor::new(ranks, CostModel::default(), mode);
        ex.set_close_mode(close);
        ex.set_parallel_close_threshold(0);
        ex.injector_mut().inject_stall(27, 3);
        ex.injector_mut().inject_stall(0, 2);
        for _ in 0..6 {
            ex.step();
        }
        (
            ex.ranks().iter().map(|r| r.log.clone()).collect::<Vec<_>>(),
            ex.stats.steps.clone(),
        )
    };
    let reference = mk(ExecMode::Sequential, CloseMode::Serial, false);
    for (mode, close, declare) in [
        (ExecMode::Sequential, CloseMode::Serial, true),
        (ExecMode::Threaded(4), CloseMode::Parallel, true),
        (ExecMode::ThreadedSpawn(3), CloseMode::Auto, true),
    ] {
        assert_eq!(
            reference,
            mk(mode, close, declare),
            "{mode:?} × {close:?} (declare {declare}) diverged under targeted stalls"
        );
    }
}
