//! Determinism and isolation contract for the serving layer
//! (`dsw_serve::SolveService`), in the style of
//! `tests/executor_determinism.rs`:
//!
//! * **Schedule determinism** — given the same `(seed, tenant set,
//!   arrival order)`, every per-tenant [`DistReport`] is bit-identical
//!   regardless of the shared pool's worker count. The scheduler's visit
//!   order is a pure function of `(seed, round)`, and the executor's
//!   pool-size determinism contract (see `executor_determinism.rs`)
//!   extends it down to the superstep level.
//! * **Tenant isolation** — a tenant's reports under multiplexing are
//!   bit-identical to a solo [`TenantSession`] solving the same job
//!   sequence on a dedicated sequential executor. Interleaving with
//!   other tenants shapes only latency, never results or accounting.
//!
//! Timing-derived fields (`compute_ns`, `imbalance`, wall-clock monitor
//! numbers) are measured, not modelled, so fingerprints compare the
//! modelled/semantic fields only.

use distributed_southwell::core::dist::{
    DistOptions, DistReport, ExecBackend, Method, MonitorMode, TenantSession,
};
use distributed_southwell::partition::Partition;
use distributed_southwell::rma::ExecMode;
use distributed_southwell::serve::{ServeConfig, SolveService, TenantId};
use distributed_southwell::sparse::{gen, CsrMatrix};

/// One step record's semantic fields: (step, residual bits, relaxations,
/// msgs, solve msgs, residual msgs, bytes, modelled-time bits, active
/// ranks).
type RecordPrint = (usize, u64, u64, u64, u64, u64, u64, u64, u64);

/// The semantic content of one report, bitwise-comparable. Excludes
/// measured timing (`compute_ns`, `imbalance`, monitor drift floats are
/// kept — they are modelled arithmetic, not clocks).
#[derive(Debug, PartialEq)]
struct ReportPrint {
    method: Method,
    records: Vec<RecordPrint>,
    x: Vec<u64>,
    converged_at: Option<usize>,
    deadlocked: bool,
    diverged: bool,
    msgs_per_rank: Vec<u64>,
}

fn print(rep: &DistReport) -> ReportPrint {
    ReportPrint {
        method: rep.method,
        records: rep
            .records
            .iter()
            .map(|r| {
                (
                    r.step,
                    r.residual_norm.to_bits(),
                    r.relaxations,
                    r.msgs,
                    r.msgs_solve,
                    r.msgs_residual,
                    r.bytes,
                    r.time.to_bits(),
                    r.active_ranks,
                )
            })
            .collect(),
        x: rep.x.iter().map(|v| v.to_bits()).collect(),
        converged_at: rep.converged_at,
        deadlocked: rep.deadlocked,
        diverged: rep.diverged,
        msgs_per_rank: rep.stats.msgs_per_rank.clone(),
    }
}

fn poisson(side: usize) -> CsrMatrix {
    gen::grid2d_poisson(side, side)
}

fn block_partition(n: usize, p: usize) -> Partition {
    Partition::new(p, (0..n).map(|i| i * p / n).collect())
}

fn opts() -> DistOptions {
    DistOptions {
        backend: ExecBackend::Superstep(ExecMode::Sequential),
        monitor: MonitorMode::Exact,
        target_residual: Some(1e-3),
        max_steps: 400,
        ..DistOptions::default()
    }
}

/// Mixed-method tenant set: (method, rhs phase) per tenant.
const TENANTS: [(Method, usize); 5] = [
    (Method::DistributedSouthwell, 0),
    (Method::BlockJacobi, 1),
    (Method::ParallelSouthwell, 2),
    (Method::DistributedSouthwell, 3),
    (Method::BlockJacobi, 4),
];

fn rhs(n: usize, phase: usize, job: usize) -> Vec<f64> {
    (0..n)
        .map(|j| ((phase * 3 + job * 11 + j) % 7) as f64 * 0.1)
        .collect()
}

/// Registers the fixed tenant set, submits `jobs` right-hand sides per
/// tenant (in arrival order: round-robin over tenants), drains the
/// service, and returns each tenant's report fingerprints.
fn run_service(workers: usize, seed: u64, jobs: usize) -> Vec<Vec<ReportPrint>> {
    let a = poisson(12);
    let n = a.nrows();
    let part = block_partition(n, 4);
    let mut svc = SolveService::new(ServeConfig {
        workers,
        quantum: 3,
        queue_capacity: 64,
        seed,
    });
    let ids: Vec<TenantId> = TENANTS
        .iter()
        .map(|&(method, phase)| {
            svc.add_tenant(
                method,
                a.clone(),
                &rhs(n, phase, 0),
                &vec![0.0; n],
                &part,
                &opts(),
            )
        })
        .collect();
    for job in 0..jobs {
        for (&id, &(_, phase)) in ids.iter().zip(TENANTS.iter()) {
            svc.submit(id, rhs(n, phase, job)).expect("queue has room");
        }
    }
    let stats = svc.run_until_idle();
    assert_eq!(stats.solves as usize, TENANTS.len() * jobs);
    ids.iter()
        .map(|&id| svc.take_reports(id).iter().map(print).collect())
        .collect()
}

/// The same job sequence solved solo: one persistent session per tenant
/// on a dedicated sequential executor, no multiplexing.
fn run_solo(jobs: usize) -> Vec<Vec<ReportPrint>> {
    let a = poisson(12);
    let n = a.nrows();
    let part = block_partition(n, 4);
    TENANTS
        .iter()
        .map(|&(method, phase)| {
            let mut session = TenantSession::build(
                method,
                a.clone(),
                &rhs(n, phase, 0),
                &vec![0.0; n],
                &part,
                &opts(),
                None,
            );
            (0..jobs)
                .map(|job| print(&session.solve(&rhs(n, phase, job))))
                .collect()
        })
        .collect()
}

/// Same `(seed, tenant set, arrival order)` ⇒ bit-identical per-tenant
/// reports regardless of the shared pool's size.
#[test]
fn reports_are_bit_identical_across_pool_sizes() {
    let reference = run_service(1, 42, 2);
    for workers in [2usize, 3] {
        let other = run_service(workers, 42, 2);
        assert_eq!(
            reference, other,
            "a {workers}-worker pool changed a tenant report"
        );
    }
}

/// Different scheduler seeds permute the visit order but leave every
/// report untouched: the schedule shapes latency only.
#[test]
fn scheduler_seed_does_not_leak_into_reports() {
    let reference = run_service(2, 0, 2);
    let reseeded = run_service(2, 31337, 2);
    assert_eq!(reference, reseeded, "seed leaked into a tenant report");
}

/// Multiplexed tenants get the exact reports a dedicated solo session
/// produces for the same job sequence — step records, message and byte
/// accounting, per-rank counters, solutions, verdicts.
#[test]
fn multiplexed_reports_match_solo_sessions() {
    let multiplexed = run_service(2, 7, 2);
    let solo = run_solo(2);
    for (t, (m, s)) in multiplexed.iter().zip(solo.iter()).enumerate() {
        assert_eq!(
            m, s,
            "tenant {t} ({:?}) diverged from its solo session",
            TENANTS[t].0
        );
    }
}
