//! Failure injection: what happens to the protocols when the substrate's
//! delivery guarantee is broken. One-sided MPI guarantees that puts are
//! visible once the epoch closes; the first half of these tests documents
//! that Distributed Southwell genuinely depends on that guarantee — exactly
//! why the paper implements it on RMA with collective epoch management.
//! The second half exercises the recovery layer (sequencing, periodic
//! invariant audits, freeze watchdog) that makes the method converge on an
//! unreliable transport anyway.

use distributed_southwell::core::dist::{
    distribute, DistributedSouthwellRank, DsConfig, RecoveryConfig,
};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::rma::{ChaosConfig, CommClass, CostModel, ExecMode, Executor};
use distributed_southwell::sparse::{gen, vecops};

/// The paper's §4.2 setup: 16×16 Poisson, unit-diagonal scaling, b = 0,
/// random guess scaled to a unit initial residual, 8 multilevel parts.
fn ds_executor_cfg(
    chaos: ChaosConfig,
    cfg: DsConfig,
    mode: ExecMode,
) -> (
    distributed_southwell::sparse::CsrMatrix,
    Vec<f64>,
    Executor<DistributedSouthwellRank>,
) {
    let mut a = gen::grid2d_poisson(16, 16);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, 11);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    let part = partition_multilevel(&Graph::from_matrix(&a), 8, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);
    let ranks = DistributedSouthwellRank::build_with(locals, &norms, &r0, cfg);
    (
        a,
        b,
        Executor::with_chaos(ranks, CostModel::default(), mode, chaos),
    )
}

fn ds_executor(
    chaos: ChaosConfig,
) -> (
    distributed_southwell::sparse::CsrMatrix,
    Vec<f64>,
    Executor<DistributedSouthwellRank>,
) {
    ds_executor_cfg(chaos, DsConfig::default(), ExecMode::Sequential)
}

fn recovery_cfg() -> DsConfig {
    DsConfig {
        recovery: RecoveryConfig::standard(),
        ..DsConfig::default()
    }
}

fn global_norm(
    ex: &Executor<DistributedSouthwellRank>,
    a: &distributed_southwell::sparse::CsrMatrix,
    b: &[f64],
) -> f64 {
    let mut x = vec![0.0; a.nrows()];
    for r in ex.ranks() {
        for (li, &g) in r.ls.rows.iter().enumerate() {
            x[g] = r.ls.x[li];
        }
    }
    vecops::norm2(&a.residual(b, &x))
}

/// ‖maintained r − (b − Ax)‖₂: the invariant drift caused by lost deltas.
fn residual_drift(
    ex: &Executor<DistributedSouthwellRank>,
    a: &distributed_southwell::sparse::CsrMatrix,
    b: &[f64],
) -> f64 {
    let mut kept = vec![0.0; a.nrows()];
    let mut x = vec![0.0; a.nrows()];
    for r in ex.ranks() {
        for (li, &g) in r.ls.rows.iter().enumerate() {
            kept[g] = r.ls.r[li];
            x[g] = r.ls.x[li];
        }
    }
    let truth = a.residual(b, &x);
    kept.iter()
        .zip(&truth)
        .map(|(k, t)| (k - t) * (k - t))
        .sum::<f64>()
        .sqrt()
}

#[test]
fn zero_drop_rate_is_identity() {
    let (_, _, mut healthy) = ds_executor(ChaosConfig::none());
    let (_, _, mut chaotic) = ds_executor(ChaosConfig {
        drop_rate: 0.0,
        drop_class: Some(CommClass::Residual),
        seed: 99,
        ..ChaosConfig::none()
    });
    for _ in 0..20 {
        healthy.step();
        chaotic.step();
    }
    assert_eq!(chaotic.stats.total_msgs_dropped(), 0);
    let hx: Vec<f64> = healthy
        .ranks()
        .iter()
        .flat_map(|r| r.ls.x.clone())
        .collect();
    let cx: Vec<f64> = chaotic
        .ranks()
        .iter()
        .flat_map(|r| r.ls.x.clone())
        .collect();
    assert_eq!(hx, cx);
}

#[test]
fn dropping_residual_updates_can_freeze_distributed_southwell() {
    // Losing every deadlock-avoidance message is equivalent to turning the
    // mechanism off: with recovery disabled the method freezes before
    // converging — the failure mode the watchdog exists for.
    let (a, b, mut ex) = ds_executor(ChaosConfig {
        drop_rate: 1.0,
        drop_class: Some(CommClass::Residual),
        seed: 1,
        ..ChaosConfig::none()
    });
    let mut frozen = false;
    for _ in 0..500 {
        let s = ex.step();
        if s.relaxations == 0 && s.msgs == 0 && global_norm(&ex, &a, &b) > 1e-6 {
            frozen = true;
            break;
        }
    }
    assert!(frozen, "expected a freeze without avoidance messages");
    assert!(ex.stats.total_msgs_dropped() > 0);
}

#[test]
fn audits_recover_from_dropped_residual_updates() {
    // Same total loss of deadlock-avoidance traffic, but with the recovery
    // layer on: the periodic audit rebroadcasts exact norms every few
    // steps (as recovery-class messages, which this chaos config does not
    // touch), so the freeze never becomes permanent and the run converges.
    let (a, b, mut ex) = ds_executor_cfg(
        ChaosConfig {
            drop_rate: 1.0,
            drop_class: Some(CommClass::Residual),
            seed: 1,
            ..ChaosConfig::none()
        },
        recovery_cfg(),
        ExecMode::Sequential,
    );
    for _ in 0..500 {
        ex.step();
        if global_norm(&ex, &a, &b) <= 0.1 {
            assert!(ex.stats.total_msgs_dropped() > 0);
            return;
        }
    }
    panic!(
        "no convergence under dropped avoidance messages: residual {}",
        global_norm(&ex, &a, &b)
    );
}

#[test]
fn dropping_solve_updates_corrupts_maintained_residuals() {
    // Lost solve messages mean the receiver's maintained residual no
    // longer equals b - Ax: the invariant every solver relies on breaks,
    // which is why the paper's implementation sits on reliable RMA.
    let (a, b, mut ex) = ds_executor(ChaosConfig {
        drop_rate: 0.5,
        drop_class: Some(CommClass::Solve),
        seed: 7,
        ..ChaosConfig::none()
    });
    for _ in 0..30 {
        ex.step();
    }
    assert!(
        ex.stats.total_msgs_dropped() > 0,
        "some solve messages must have dropped"
    );
    let drift = residual_drift(&ex, &a, &b);
    assert!(
        drift > 1e-8,
        "maintained residuals should drift from the truth, drift = {drift}"
    );
}

#[test]
fn audits_repair_solve_update_drift() {
    // With the recovery layer on, the invariant audit detects the drift of
    // the previous test and overwrites the corrupted boundary rows with
    // values recomputed from the audited neighbor solutions — so the run
    // still converges and repairs are observable.
    let (a, b, mut ex) = ds_executor_cfg(
        ChaosConfig {
            drop_rate: 0.5,
            drop_class: Some(CommClass::Solve),
            seed: 7,
            ..ChaosConfig::none()
        },
        recovery_cfg(),
        ExecMode::Sequential,
    );
    for _ in 0..1000 {
        ex.step();
        if global_norm(&ex, &a, &b) <= 0.1 {
            let repairs: u64 = ex.ranks().iter().map(|r| r.drift_repairs).sum();
            assert!(repairs > 0, "the audit should have overwritten rows");
            return;
        }
    }
    panic!(
        "no convergence under 50% solve loss: residual {}, drift {}",
        global_norm(&ex, &a, &b),
        residual_drift(&ex, &a, &b)
    );
}

#[test]
fn light_chaos_changes_the_trajectory_deterministically() {
    let mk = || {
        ds_executor(ChaosConfig {
            drop_rate: 0.1,
            drop_class: None,
            seed: 42,
            ..ChaosConfig::none()
        })
    };
    let (_, _, mut e1) = mk();
    let (_, _, mut e2) = mk();
    for _ in 0..15 {
        e1.step();
        e2.step();
    }
    assert_eq!(e1.stats.total_msgs_dropped(), e2.stats.total_msgs_dropped());
    let x1: Vec<f64> = e1.ranks().iter().flat_map(|r| r.ls.x.clone()).collect();
    let x2: Vec<f64> = e2.ranks().iter().flat_map(|r| r.ls.x.clone()).collect();
    assert_eq!(x1, x2, "chaos must be deterministic per seed");
}

#[test]
fn acceptance_ten_percent_drops_and_stragglers_still_converge() {
    // The headline robustness scenario: 10% uniform message loss across
    // all classes, plus injected stragglers, on the paper's 16×16 Poisson
    // / 8-rank setup. With the standard recovery preset, DS must still
    // reach ‖r‖₂ ≤ 0.1 — no freeze, and the audit keeps the maintained
    // residuals near the truth.
    let chaos = ChaosConfig {
        drop_rate: 0.1,
        drop_class: None,
        seed: 2024,
        ..ChaosConfig::none()
    };
    let (a, b, mut ex) = ds_executor_cfg(chaos, recovery_cfg(), ExecMode::Sequential);
    let mut converged = None;
    for step in 0..600 {
        // Deterministic stragglers: two ranks periodically lose whole steps.
        if step % 17 == 3 {
            ex.injector_mut().inject_stall(2, 2);
        }
        if step % 23 == 5 {
            ex.injector_mut().inject_stall(5, 3);
        }
        ex.step();
        if global_norm(&ex, &a, &b) <= 0.1 {
            converged = Some(step + 1);
            break;
        }
    }
    let steps = converged.unwrap_or_else(|| {
        panic!(
            "did not reach 0.1 under drops+stragglers: residual {}, drift {}",
            global_norm(&ex, &a, &b),
            residual_drift(&ex, &a, &b)
        )
    });
    let faults = ex.stats.total_faults();
    assert!(
        faults.dropped.total() > 0,
        "chaos should have dropped messages"
    );
    assert!(
        faults.stalled_ranks > 0,
        "stragglers should have stalled steps"
    );
    // The invariant drift is bounded: lost deltas are healed by the audit,
    // so the maintained residuals stay near b - Ax (same scale as the
    // target, not accumulated corruption).
    assert!(
        residual_drift(&ex, &a, &b) <= 0.1,
        "drift {} should stay within the audit's reach",
        residual_drift(&ex, &a, &b)
    );
    println!(
        "converged in {steps} steps with {} drops",
        faults.dropped.total()
    );
}

#[test]
fn chaos_with_recovery_is_bit_identical_across_exec_modes() {
    // Fault decisions happen in the executor's serialized epoch-close
    // section and recovery state is purely per-rank, so a faulty recovered
    // run must be reproducible bit-for-bit under threading.
    let chaos = ChaosConfig {
        drop_rate: 0.15,
        duplicate_rate: 0.1,
        delay_rate: 0.15,
        max_delay_epochs: 2,
        stall_rate: 0.05,
        stall_steps: 2,
        seed: 77,
        ..ChaosConfig::none()
    };
    let (_, _, mut seq) = ds_executor_cfg(chaos, recovery_cfg(), ExecMode::Sequential);
    let (_, _, mut thr) = ds_executor_cfg(chaos, recovery_cfg(), ExecMode::Threaded(3));
    for step in 0..40 {
        let a = seq.step();
        let b = thr.step();
        assert_eq!(a, b, "step {step}: stats must match bit-for-bit");
    }
    let xs: Vec<f64> = seq.ranks().iter().flat_map(|r| r.ls.x.clone()).collect();
    let xt: Vec<f64> = thr.ranks().iter().flat_map(|r| r.ls.x.clone()).collect();
    assert_eq!(xs, xt, "solutions must be bit-identical");
    let ds: Vec<u64> = seq.ranks().iter().map(|r| r.drift_repairs).collect();
    let dt: Vec<u64> = thr.ranks().iter().map(|r| r.drift_repairs).collect();
    assert_eq!(ds, dt, "recovery counters must be bit-identical");
}
