//! Failure injection: what happens to the protocols when the substrate's
//! delivery guarantee is broken. One-sided MPI guarantees that puts are
//! visible once the epoch closes; these tests document that Distributed
//! Southwell genuinely depends on that guarantee — exactly why the paper
//! implements it on RMA with collective epoch management.

use distributed_southwell::core::dist::{distribute, DistributedSouthwellRank};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::rma::{ChaosConfig, CommClass, CostModel, ExecMode, Executor};
use distributed_southwell::sparse::{gen, vecops};

fn ds_executor(
    chaos: ChaosConfig,
) -> (
    distributed_southwell::sparse::CsrMatrix,
    Vec<f64>,
    Executor<DistributedSouthwellRank>,
) {
    let mut a = gen::grid2d_poisson(16, 16);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, 11);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    let part = partition_multilevel(&Graph::from_matrix(&a), 8, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);
    let ranks = DistributedSouthwellRank::build(locals, &norms, &r0);
    (
        a,
        b,
        Executor::with_chaos(ranks, CostModel::default(), ExecMode::Sequential, chaos),
    )
}

fn global_norm(
    ex: &Executor<DistributedSouthwellRank>,
    a: &distributed_southwell::sparse::CsrMatrix,
    b: &[f64],
) -> f64 {
    let mut x = vec![0.0; a.nrows()];
    for r in ex.ranks() {
        for (li, &g) in r.ls.rows.iter().enumerate() {
            x[g] = r.ls.x[li];
        }
    }
    vecops::norm2(&a.residual(b, &x))
}

#[test]
fn zero_drop_rate_is_identity() {
    let (_, _, mut healthy) = ds_executor(ChaosConfig::none());
    let (_, _, mut chaotic) = ds_executor(ChaosConfig {
        drop_rate: 0.0,
        drop_class: Some(CommClass::Residual),
        seed: 99,
    });
    for _ in 0..20 {
        healthy.step();
        chaotic.step();
    }
    assert_eq!(chaotic.msgs_dropped, 0);
    let hx: Vec<f64> = healthy.ranks().iter().flat_map(|r| r.ls.x.clone()).collect();
    let cx: Vec<f64> = chaotic.ranks().iter().flat_map(|r| r.ls.x.clone()).collect();
    assert_eq!(hx, cx);
}

#[test]
fn dropping_residual_updates_can_freeze_distributed_southwell() {
    // Losing every deadlock-avoidance message is equivalent to turning the
    // mechanism off: the method can freeze before converging.
    let (a, b, mut ex) = ds_executor(ChaosConfig {
        drop_rate: 1.0,
        drop_class: Some(CommClass::Residual),
        seed: 1,
    });
    let mut frozen = false;
    for _ in 0..500 {
        let s = ex.step();
        if s.relaxations == 0 && s.msgs == 0 && global_norm(&ex, &a, &b) > 1e-6 {
            frozen = true;
            break;
        }
    }
    assert!(frozen, "expected a freeze without avoidance messages");
    assert!(ex.msgs_dropped > 0);
}

#[test]
fn dropping_solve_updates_corrupts_maintained_residuals() {
    // Lost solve messages mean the receiver's maintained residual no
    // longer equals b - Ax: the invariant every solver relies on breaks,
    // which is why the paper's implementation sits on reliable RMA.
    let (a, b, mut ex) = ds_executor(ChaosConfig {
        drop_rate: 0.5,
        drop_class: Some(CommClass::Solve),
        seed: 7,
    });
    for _ in 0..30 {
        ex.step();
    }
    assert!(ex.msgs_dropped > 0, "some solve messages must have dropped");
    let mut kept = vec![0.0; a.nrows()];
    let mut x = vec![0.0; a.nrows()];
    for r in ex.ranks() {
        for (li, &g) in r.ls.rows.iter().enumerate() {
            kept[g] = r.ls.r[li];
            x[g] = r.ls.x[li];
        }
    }
    let truth = a.residual(&b, &x);
    let drift: f64 = kept
        .iter()
        .zip(&truth)
        .map(|(k, t)| (k - t) * (k - t))
        .sum::<f64>()
        .sqrt();
    assert!(
        drift > 1e-8,
        "maintained residuals should drift from the truth, drift = {drift}"
    );
}

#[test]
fn light_chaos_changes_the_trajectory_deterministically() {
    let mk = || {
        ds_executor(ChaosConfig {
            drop_rate: 0.1,
            drop_class: None,
            seed: 42,
        })
    };
    let (_, _, mut e1) = mk();
    let (_, _, mut e2) = mk();
    for _ in 0..15 {
        e1.step();
        e2.step();
    }
    assert_eq!(e1.msgs_dropped, e2.msgs_dropped);
    let x1: Vec<f64> = e1.ranks().iter().flat_map(|r| r.ls.x.clone()).collect();
    let x2: Vec<f64> = e2.ranks().iter().flat_map(|r| r.ls.x.clone()).collect();
    assert_eq!(x1, x2, "chaos must be deterministic per seed");
}
