//! End-to-end convergence guarantees across the method family, on both
//! friendly and hostile SPD systems.

use distributed_southwell::core::dist::{run_method, DistOptions, Method};
use distributed_southwell::core::scalar::{self, ScalarOptions};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::sparse::dense::Cholesky;
use distributed_southwell::sparse::{gen, suite, vecops, CsrMatrix};

fn unit_scale_problem(mut a: CsrMatrix, seed: u64) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    if (a.get(0, 0) - 1.0).abs() > 1e-12 {
        a.scale_unit_diagonal().unwrap();
    }
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, seed);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    (a, b, x0)
}

#[test]
fn southwell_methods_converge_on_every_suite_standin() {
    // DS and PS must reach 0.1 on every (shrunk) suite matrix — the paper's
    // claim that the Southwell family is robust where Block Jacobi is not.
    // Scale 0.2 keeps subdomains at ~50+ rows: the paper's regime. (With
    // degenerate few-row blocks a local sweep nearly zeroes the residual,
    // and DS's inexact estimates can let adjacent blocks relax together —
    // the "convergence is at risk" caveat of §4.3.)
    for e in suite::suite() {
        let a = e.build_small(0.2);
        let (a, b, x0) = unit_scale_problem(a, 9);
        let p = (a.nrows() / 100).clamp(4, 32);
        let part = partition_multilevel(&Graph::from_matrix(&a), p, MultilevelOptions::default());
        for m in [Method::ParallelSouthwell, Method::DistributedSouthwell] {
            let opts = DistOptions {
                max_steps: 120,
                target_residual: Some(0.1),
                ..DistOptions::default()
            };
            let rep = run_method(m, &a, &b, &x0, &part, &opts);
            assert!(
                rep.converged_at.is_some(),
                "{} on {}: final {} (deadlocked={})",
                m.label(),
                e.name,
                rep.final_residual(),
                rep.deadlocked
            );
        }
    }
}

#[test]
fn ds_uses_less_communication_than_ps_across_the_suite() {
    // Aggregate Table 2 headline at reduced scale: DS total messages to the
    // target are below PS on a clear majority of matrices (and never more
    // than slightly above).
    let mut wins = 0;
    let mut total = 0;
    for e in suite::suite() {
        let a = e.build_small(0.2);
        let (a, b, x0) = unit_scale_problem(a, 10);
        let p = (a.nrows() / 100).clamp(4, 32);
        let part = partition_multilevel(&Graph::from_matrix(&a), p, MultilevelOptions::default());
        let opts = DistOptions {
            max_steps: 120,
            target_residual: None,
            ..DistOptions::default()
        };
        let ps = run_method(Method::ParallelSouthwell, &a, &b, &x0, &part, &opts);
        let ds = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        if let (Some(pc), Some(dc)) = (ps.comm_to_reach(0.1), ds.comm_to_reach(0.1)) {
            total += 1;
            if dc < pc {
                wins += 1;
            }
            assert!(
                dc < 1.3 * pc,
                "{}: DS comm {dc} should never be far above PS {pc}",
                e.name
            );
        }
    }
    assert!(
        total >= 10,
        "most matrices should be comparable, got {total}"
    );
    assert!(
        wins * 4 >= total * 3,
        "DS should win on >= 3/4 of matrices: {wins}/{total}"
    );
}

#[test]
fn scalar_methods_solve_to_machine_precision() {
    // All scalar solvers drive a small SPD system to ~machine precision and
    // agree with the direct solution.
    let a = gen::grid2d_poisson(9, 9);
    let n = a.nrows();
    let b = gen::random_rhs(n, 12);
    let x_true = Cholesky::factor_csr(&a).unwrap().solve(&b);
    let opts = ScalarOptions {
        max_relaxations: 4000 * n as u64,
        target_residual: Some(1e-11),
        record_stride: n as u64,
        seed: 0,
    };
    let x0 = vec![0.0; n];
    let runs: Vec<(&str, Vec<f64>)> = vec![
        ("gs", scalar::gauss_seidel(&a, &b, &x0, &opts).0),
        ("jacobi", scalar::jacobi(&a, &b, &x0, &opts).0),
        (
            "mcgs",
            scalar::multicolor_gauss_seidel(&a, &b, &x0, &opts).0,
        ),
        ("sw", scalar::sequential_southwell(&a, &b, &x0, &opts).0),
        ("psw", scalar::parallel_southwell(&a, &b, &x0, &opts).0),
        (
            "dsw",
            scalar::distributed_southwell_scalar(&a, &b, &x0, &opts).x,
        ),
    ];
    for (name, x) in runs {
        let err = x
            .iter()
            .zip(&x_true)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-8, "{name}: error {err}");
    }
}

#[test]
fn block_jacobi_degrades_with_rank_count_while_ds_does_not() {
    // Figure 9's shape at reduced scale: on a hostile matrix, BJ's final
    // residual grows with the rank count; DS's stays bounded.
    let e = suite::by_name("Flan_1565").unwrap();
    let (a, b, x0) = unit_scale_problem(e.build_small(0.25), 13);
    let mut bj_finals = Vec::new();
    let mut ds_finals = Vec::new();
    for p in [4usize, 16, 64] {
        let part = partition_multilevel(&Graph::from_matrix(&a), p, MultilevelOptions::default());
        let opts = DistOptions {
            max_steps: 50,
            target_residual: None,
            divergence_cutoff: None,
            ..DistOptions::default()
        };
        bj_finals.push(run_method(Method::BlockJacobi, &a, &b, &x0, &part, &opts).final_residual());
        ds_finals.push(
            run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts).final_residual(),
        );
    }
    assert!(
        bj_finals[2] > 10.0 * bj_finals[0],
        "BJ should degrade sharply: {bj_finals:?}"
    );
    assert!(
        ds_finals.iter().all(|&f| f < 1.0),
        "DS must not diverge: {ds_finals:?}"
    );
}

#[test]
fn deadlock_free_property_across_seeds() {
    // DS must never freeze, whatever the initial guess.
    let mut a = gen::grid2d_poisson(14, 14);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let part = partition_multilevel(&Graph::from_matrix(&a), 10, MultilevelOptions::default());
    for seed in 0..8 {
        let b = vec![0.0; n];
        let mut x0 = gen::random_guess(n, seed);
        let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
        x0.iter_mut().for_each(|v| *v *= s);
        let opts = DistOptions {
            max_steps: 400,
            target_residual: Some(1e-6),
            ..DistOptions::default()
        };
        let rep = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        assert!(!rep.deadlocked, "seed {seed} deadlocked");
        assert!(rep.converged_at.is_some(), "seed {seed} did not converge");
    }
}
