//! Warm-start correctness of the persistent solve sessions.
//!
//! Two contracts, pinned per solver (BJ / PS / DS) and per exec mode
//! (Sequential + Threaded):
//!
//! 1. **Unchanged `b` ⇒ pure continuation.** Re-solving with a bitwise
//!    identical right-hand side touches no rank state and discards no
//!    messages, so the re-solve's steps are bit-identical to having let
//!    the original run continue for the same number of steps — exact
//!    residual norms at every boundary and the final solution match to
//!    the bit.
//! 2. **Changed `b` ⇒ exact reseed.** After `begin_solve` with a new
//!    right-hand side, every rank's maintained `‖r_p‖²` equals a bitwise
//!    recompute from its residual (no stale `norm_dirty` cache), the
//!    residual itself equals `b − Ax` to rounding, and the DS ghost
//!    layer `z` mirrors the owning neighbors' residuals to the bit.
//!
//! A direct audit of `invalidate_norm_cache()` rides along: out-of-band
//! mutation of `ls.r` *without* the invalidation hook leaves the DS norm
//! cache stale (that is what the hook exists for), and the warm-start
//! reseed path must therefore never rely on a later refresh — it
//! recomputes eagerly, which the proptest checks bitwise.

use distributed_southwell::core::dist::{
    DistOptions, DistReport, ExecBackend, Method, MonitorMode, TenantSession,
};
use distributed_southwell::partition::Partition;
use distributed_southwell::rma::ExecMode;
use distributed_southwell::sparse::{gen, vecops, CsrMatrix};
use proptest::prelude::*;

const METHODS: [Method; 4] = [
    Method::BlockJacobi,
    Method::ParallelSouthwell,
    Method::ParallelSouthwellPiggybackOnly,
    Method::DistributedSouthwell,
];

/// The §4.2 setup at 16 ranks: 16×16 Poisson, unit diagonal, random
/// guess scaled to a unit initial residual.
fn problem(seed: u64) -> (CsrMatrix, Vec<f64>, Vec<f64>, Partition) {
    let mut a = gen::grid2d_poisson(16, 16);
    a.scale_unit_diagonal().expect("nonzero diagonal");
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, seed);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    let part = Partition::new(16, (0..n).map(|i| i * 16 / n).collect());
    (a, b, x0, part)
}

fn opts(mode: ExecMode, max_steps: usize) -> DistOptions {
    DistOptions {
        backend: ExecBackend::Superstep(mode),
        // Exact measurement at every boundary: makes the recorded norm
        // sequence bitwise comparable between a continuation and a
        // re-solve (the maintained cadence would differ by the solve-local
        // step counter).
        monitor: MonitorMode::Exact,
        // No verdict targets: both runs execute exactly `max_steps` steps.
        target_residual: None,
        divergence_cutoff: None,
        max_steps,
        ..DistOptions::default()
    }
}

/// Exact per-boundary norms of a finished solve, as bits.
fn norm_bits(r: &DistReport) -> Vec<u64> {
    r.records
        .iter()
        .map(|rec| rec.residual_norm.to_bits())
        .collect()
}

fn x_bits(x: &[f64]) -> Vec<u64> {
    x.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Contract 1: an unchanged-`b` re-solve continues the original run
    /// bit for bit.
    #[test]
    fn unchanged_rhs_resolve_is_bit_identical_to_continuing(
        seed in 1u64..1000,
        k in 3usize..10,
        mi in 0usize..4,
        threaded in 0usize..2,
    ) {
        let method = METHODS[mi];
        let mode = if threaded == 1 { ExecMode::Threaded(3) } else { ExecMode::Sequential };
        let (a, b, x0, part) = problem(seed);

        // Subject: solve k steps, then re-solve (same b) for k more.
        let mut subject = TenantSession::build(
            method, a.clone(), &b, &x0, &part, &opts(mode, k), None,
        );
        subject.begin_solve(&b);
        while !subject.step_batch(2) {}
        let first = subject.finish();
        subject.begin_solve(&b); // bitwise-unchanged: must touch nothing
        while !subject.step_batch(2) {}
        let resumed = subject.finish();

        // Reference: one uninterrupted 2k-step run.
        let mut reference = TenantSession::build(
            method, a.clone(), &b, &x0, &part, &opts(mode, 2 * k), None,
        );
        let continued = reference.solve(&b);

        // The re-solve's boundary norms continue the reference's: its
        // step-0 record is the reference's step-k record, and so on.
        let cont = norm_bits(&continued);
        let sub: Vec<u64> = norm_bits(&first)
            .into_iter()
            .chain(norm_bits(&resumed).into_iter().skip(1))
            .collect();
        prop_assert_eq!(&sub, &cont, "{:?} {:?}: boundary norms diverged", method, mode);
        prop_assert_eq!(
            x_bits(&resumed.x),
            x_bits(&continued.x),
            "{:?} {:?}: solutions diverged",
            method,
            mode
        );
        // Message counters continue too: the re-solve's cumulative counts
        // plus the first solve's total equal the uninterrupted run's.
        let last_first = first.records.last().expect("k >= 1 records");
        let last_res = resumed.records.last().expect("k >= 1 records");
        let last_cont = continued.records.last().expect("2k records");
        prop_assert_eq!(last_first.msgs + last_res.msgs, last_cont.msgs);
        prop_assert_eq!(
            last_first.relaxations + last_res.relaxations,
            last_cont.relaxations
        );
    }

    /// Contract 2: a changed-`b` re-solve re-seeds everything exactly.
    #[test]
    fn changed_rhs_reseeds_norms_and_ghosts_exactly(
        seed in 1u64..1000,
        k in 1usize..8,
        mi in 0usize..4,
        threaded in 0usize..2,
        amp in 0.05f64..2.0,
    ) {
        let method = METHODS[mi];
        let mode = if threaded == 1 { ExecMode::Threaded(3) } else { ExecMode::Sequential };
        let (a, b, x0, part) = problem(seed);
        let n = a.nrows();

        let mut session = TenantSession::build(
            method, a.clone(), &b, &x0, &part, &opts(mode, k), None,
        );
        session.begin_solve(&b);
        while !session.step_batch(2) {}
        session.finish();

        // Snapshot the DS ghost layer before the reseed: the reseed must
        // shift it by exactly Δb at each external row — anything else
        // (forgetting z, wrong indexing) breaks the z-mirrors-neighbor-r
        // coupling the protocol relies on.
        let z_before: Option<Vec<Vec<f64>>> = match &session {
            TenantSession::Ds(s) => Some(s.ranks().iter().map(|r| r.z.clone()).collect()),
            _ => None,
        };

        // Evolve the right-hand side and re-solve. (The session's current
        // b is the all-zero one from `problem`, so Δb = b2.)
        let b2: Vec<f64> = (0..n)
            .map(|i| amp * (((i * 37 + seed as usize) % 11) as f64 / 11.0 - 0.5))
            .collect();
        session.begin_solve(&b2);

        macro_rules! snap {
            ($s:expr) => {{
                let ranks = $s.ranks();
                (
                    gather(ranks.iter().map(|r| &r.ls), n),
                    ranks.iter().map(|r| r.ls.r.clone()).collect::<Vec<Vec<f64>>>(),
                    ranks.iter().map(maintained).collect::<Vec<f64>>(),
                    ranks.iter().map(|r| r.ls.rows.clone()).collect::<Vec<Vec<usize>>>(),
                )
            }};
        }
        let (x, r_parts, norms, rows) = match &session {
            TenantSession::Bj(s) => snap!(s),
            TenantSession::Ps(s) => snap!(s),
            TenantSession::Ds(s) => snap!(s),
        };

        // DS-only invariants: Γ/Γ̃ carry the exact post-reseed norms and
        // the ghost layer shifted by exactly Δb.
        if let TenantSession::Ds(s) = &session {
            let ranks = s.ranks();
            let exact_norms: Vec<f64> = ranks.iter().map(|r| r.ls.residual_norm_sq()).collect();
            let z0 = z_before.as_ref().expect("snapshotted before reseed");
            for (p, rk) in ranks.iter().enumerate() {
                for (slot, &q) in rk.ls.neighbors.iter().enumerate() {
                    prop_assert_eq!(
                        rk.gamma_sq[slot].to_bits(),
                        exact_norms[q].to_bits(),
                        "rank {} Γ[{}] not the exact reseeded norm of {}",
                        p, slot, q
                    );
                    prop_assert_eq!(
                        rk.tilde_sq[slot].to_bits(),
                        exact_norms[p].to_bits(),
                        "rank {} Γ̃[{}] not its own exact norm", p, slot
                    );
                }
                for (slot, &g) in rk.ls.ext_cols.iter().enumerate() {
                    let expected = z0[p][slot] + b2[g];
                    prop_assert_eq!(
                        rk.z[slot].to_bits(),
                        expected.to_bits(),
                        "rank {} ghost slot {} (row {}) not shifted by Δb",
                        p, slot, g
                    );
                }
            }
        }

        // (a) — bitwise: maintained norm == recompute from r — no stale
        // `norm_dirty` cache survives a reseed.
        for (p, (norm, rp)) in norms.iter().zip(&r_parts).enumerate() {
            let recomputed = vecops::norm2_sq(rp);
            prop_assert_eq!(
                norm.to_bits(),
                recomputed.to_bits(),
                "rank {}: stale maintained norm after reseed", p
            );
        }

        // (b) — to rounding: the delta-shifted r equals a cold recompute
        // (the maintained residual drifts from b − Ax only by the
        // protocol's own per-step rounding, which the reseed preserves).
        let r_exact = a.residual(&b2, &x);
        for (rows_p, rp) in rows.iter().zip(&r_parts) {
            for (li, &g) in rows_p.iter().enumerate() {
                let err = (rp[li] - r_exact[g]).abs();
                prop_assert!(
                    err <= 1e-10,
                    "row {}: reseeded r={} vs exact {}", g, rp[li], r_exact[g]
                );
            }
        }

        // And the re-solve still works end to end.
        while !session.step_batch(4) {}
        let report = session.finish();
        let final_norm = report
            .records
            .last()
            .expect("at least the initial record")
            .residual_norm;
        prop_assert!(final_norm.is_finite());
    }
}

fn gather<'a>(
    locals: impl Iterator<Item = &'a distributed_southwell::core::dist::LocalSystem>,
    n: usize,
) -> Vec<f64> {
    let mut x = vec![0.0; n];
    for ls in locals {
        for (li, &g) in ls.rows.iter().enumerate() {
            x[g] = ls.x[li];
        }
    }
    x
}

fn maintained<R: distributed_southwell::rma::RankAlgorithm>(r: &R) -> f64 {
    r.maintained_norm_sq()
        .expect("all three solvers maintain norms")
}

/// The `invalidate_norm_cache()` audit: out-of-band residual mutation
/// without the hook leaves the DS cache stale — which is exactly why the
/// warm-start reseed recomputes eagerly instead of relying on a later
/// refresh. This pins the hook's semantics so a future refactor cannot
/// silently make the reseed's eager recompute redundant-looking but
/// load-bearing.
#[test]
fn norm_cache_requires_invalidation_after_out_of_band_mutation() {
    use distributed_southwell::rma::RankAlgorithm;
    let (a, b, x0, part) = problem(3);
    let session = TenantSession::build(
        Method::DistributedSouthwell,
        a,
        &b,
        &x0,
        &part,
        &opts(ExecMode::Sequential, 4),
        None,
    );
    let TenantSession::Ds(mut s) = session else {
        panic!("DS build returns a DS session");
    };
    s.begin_solve(&b);
    s.step_batch(2);

    let rank = &mut s.ranks_mut()[0];
    let before = rank.maintained_norm_sq().expect("DS maintains norms");
    // Out-of-band mutation, no invalidation: the cache must NOT track it
    // (the cache is refreshed lazily, at phase boundaries).
    rank.ls.r[0] += 10.0;
    let stale = rank.maintained_norm_sq().expect("DS maintains norms");
    assert_eq!(
        stale.to_bits(),
        before.to_bits(),
        "maintained norm is a cache; out-of-band writes must not show up unbidden"
    );
    // With the hook: the next phase refreshes. Stepping once makes the
    // maintained norm consistent with the mutated residual again.
    rank.invalidate_norm_cache();
    s.step_batch(1);
    let rank = &s.ranks()[0];
    let after = rank.maintained_norm_sq().expect("DS maintains norms");
    let recomputed = rank.ls.residual_norm_sq();
    assert_eq!(
        after.to_bits(),
        recomputed.to_bits(),
        "invalidate_norm_cache + one phase refreshes the cache exactly"
    );
}

/// Warm starting pays: after a converged solve, a small perturbation of
/// `b` re-converges in fewer steps than the cold solve took.
#[test]
fn warm_start_reconverges_faster() {
    let (a, _, x0, part) = problem(5);
    let n = a.nrows();
    let b1: Vec<f64> = (0..n).map(|i| ((i % 7) as f64 - 3.0) * 0.05).collect();
    let run_opts = DistOptions {
        backend: ExecBackend::Superstep(ExecMode::Sequential),
        target_residual: Some(1e-6),
        max_steps: 2000,
        ..DistOptions::default()
    };
    let mut session = TenantSession::build(
        Method::DistributedSouthwell,
        a,
        &b1,
        &x0,
        &part,
        &run_opts,
        None,
    );
    let cold = session.solve(&b1);
    let cold_steps = cold.converged_at.expect("cold solve converges");

    let b2: Vec<f64> = b1.iter().map(|v| v + 1e-7).collect();
    let warm = session.solve(&b2);
    let warm_steps = warm.converged_at.expect("warm solve converges");
    assert!(
        warm_steps < cold_steps,
        "warm ({warm_steps}) must beat cold ({cold_steps})"
    );
}
