//! Protocol-level invariants of the Distributed Southwell implementation,
//! checked from outside the crate through the public API.

use distributed_southwell::core::dist::{
    distribute, DistributedSouthwellRank, DsConfig, ParallelSouthwellRank,
};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::rma::{CostModel, ExecMode, Executor};
use distributed_southwell::sparse::{gen, vecops};

fn build_ds_executor(
    nx: usize,
    p: usize,
    seed: u64,
) -> (
    distributed_southwell::sparse::CsrMatrix,
    Vec<f64>,
    Executor<DistributedSouthwellRank>,
) {
    let mut a = gen::grid2d_poisson(nx, nx);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, seed);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    let part = partition_multilevel(&Graph::from_matrix(&a), p, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);
    let ranks = DistributedSouthwellRank::build_with(locals, &norms, &r0, DsConfig::default());
    (
        a,
        b,
        Executor::new(ranks, CostModel::default(), ExecMode::Sequential),
    )
}

#[test]
fn ghost_layers_hold_true_boundary_residuals_at_quiescence() {
    // After a step with no explicit updates in flight, each rank's ghost
    // layer z must match the owning rank's actual residual values at the
    // positions the protocol keeps fresh — whenever either endpoint
    // communicated recently. We verify the weaker but universal invariant:
    // Γ̃ records mirror the neighbor's Γ entries (the paper's "always
    // exactly known" claim).
    let (_, _, mut ex) = build_ds_executor(18, 9, 3);
    let mut checked = 0;
    for _ in 0..80 {
        let s = ex.step();
        if s.msgs_residual != 0 {
            continue;
        }
        checked += 1;
        for p in ex.ranks() {
            for (slot, &q) in p.ls.neighbors.iter().enumerate() {
                let qr = &ex.ranks()[q];
                let back = qr.ls.neighbor_slot(p.ls.rank);
                let gamma = qr.gamma_sq[back];
                assert!(
                    (p.tilde_sq[slot] - gamma).abs() <= 1e-12 * gamma.max(1.0),
                    "rank {} vs neighbor {q}",
                    p.ls.rank
                );
            }
        }
    }
    assert!(checked > 0);
}

#[test]
fn gamma_estimates_never_break_progress() {
    // Whatever the estimates do, some rank must relax within any window of
    // a few steps until convergence (global progress, i.e. deadlock
    // freedom with avoidance enabled).
    let (a, b, mut ex) = build_ds_executor(20, 12, 5);
    let mut idle_run = 0;
    for _ in 0..300 {
        let s = ex.step();
        if s.relaxations == 0 {
            idle_run += 1;
            assert!(
                idle_run <= 2,
                "three consecutive idle steps should be impossible"
            );
        } else {
            idle_run = 0;
        }
        // Converged?
        let mut x = vec![0.0; a.nrows()];
        for r in ex.ranks() {
            for (li, &g) in r.ls.rows.iter().enumerate() {
                x[g] = r.ls.x[li];
            }
        }
        if vecops::norm2(&a.residual(&b, &x)) < 1e-8 {
            return;
        }
    }
}

#[test]
fn message_counters_are_conserved() {
    // Total per-rank counters equal the per-step sums, and every message
    // lands at a neighbor (conservation of the paper's comm-cost metric).
    let (_, _, mut ex) = build_ds_executor(16, 8, 7);
    for _ in 0..30 {
        ex.step();
    }
    let per_rank: u64 = ex.stats.msgs_per_rank.iter().sum();
    let per_step: u64 = ex.stats.steps.iter().map(|s| s.msgs).sum();
    assert_eq!(per_rank, per_step);
    let by_class = ex.stats.total_msgs_solve() + ex.stats.total_msgs_residual();
    assert_eq!(by_class, per_step);
}

#[test]
fn ps_explicit_updates_follow_norm_changes_only() {
    // Parallel Southwell sends explicit updates only in steps where some
    // rank's residual actually changed without it relaxing; in a fully
    // quiet step (no relaxation anywhere) there must be no new residual
    // messages beyond the first settling step.
    let mut a = gen::grid2d_poisson(12, 12);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, 2);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    let part = partition_multilevel(&Graph::from_matrix(&a), 6, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let ranks = ParallelSouthwellRank::build(locals, &norms);
    let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
    for _ in 0..40 {
        let s = ex.step();
        if s.relaxations == 0 {
            // No one relaxed: no residual can have changed in this step's
            // phase 1, so no explicit updates were sent in it. (Residual
            // messages *read* this step were sent earlier.)
            assert_eq!(s.msgs_solve, 0, "no solve messages without relaxations");
        }
    }
}
