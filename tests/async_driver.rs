//! Driver-level properties of the asynchronous backend
//! ([`ExecBackend::Async`]): the full `run_method` stack — probabilistic
//! scheduler, straggler skew, chaos injection, maintained monitoring with
//! exact verification, recovery accounting — is deterministic per seed,
//! and a convergence verdict is never declared off an unverified
//! maintained norm (mirroring `tests/monitor_properties.rs` for the
//! superstep backend).

use distributed_southwell::core::dist::{
    run_method, DistOptions, DsConfig, ExecBackend, Method, MonitorMode, RecoveryConfig, Redundancy,
};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions, Partition};
use distributed_southwell::rma::{AsyncOptions, ChaosConfig, ExecMode};
use distributed_southwell::sparse::{gen, vecops, CsrMatrix};
use proptest::prelude::*;

/// The §4.2 setup: unit diagonal, b = 0, guess scaled to unit residual.
fn problem(nx: usize, p: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>, Partition) {
    let mut a = gen::grid2d_poisson(nx, nx);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, 11);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    let part = partition_multilevel(&Graph::from_matrix(&a), p, MultilevelOptions::default());
    (a, b, x0, part)
}

/// The deterministic fields of one `StepRecord`: step, residual bits,
/// relaxations, msgs, per-class msgs sum, redundancy msgs, bytes, active.
type RecordKey = (usize, u64, u64, u64, u64, u64, u64, u64);

/// Every deterministic observable of a finished run, bitwise-comparable.
/// Measured timing (`compute_ns`, `imbalance`, monitor nanoseconds) is
/// deliberately excluded — wall-clock is not part of the contract.
#[derive(Debug, PartialEq)]
struct ReportPrint {
    records: Vec<RecordKey>,
    x: Vec<u64>,
    converged_at: Option<usize>,
    deadlocked: bool,
    diverged: bool,
    watchdog_nudges: u64,
    drift_repairs: u64,
    stale_discards: u64,
    faults: (u64, u64, u64),
    msgs_per_rank: Vec<u64>,
    evals: u64,
    verifications: u64,
    max_rel_drift_bits: u64,
}

fn print_of(rep: &distributed_southwell::core::dist::DistReport) -> ReportPrint {
    let faults = rep.stats.total_faults();
    let mon = rep.monitor_stats();
    ReportPrint {
        records: rep
            .records
            .iter()
            .map(|r| {
                (
                    r.step,
                    r.residual_norm.to_bits(),
                    r.relaxations,
                    r.msgs,
                    r.msgs_solve + r.msgs_residual + r.msgs_recovery + r.msgs_redundancy,
                    r.msgs_redundancy,
                    r.bytes,
                    r.active_ranks,
                )
            })
            .collect(),
        x: rep.x.iter().map(|v| v.to_bits()).collect(),
        converged_at: rep.converged_at,
        deadlocked: rep.deadlocked,
        diverged: rep.diverged,
        watchdog_nudges: rep.watchdog_nudges,
        drift_repairs: rep.drift_repairs,
        stale_discards: rep.stale_discards,
        faults: (
            faults.dropped.total(),
            faults.duplicated.total(),
            faults.delayed.total(),
        ),
        msgs_per_rank: rep.stats.msgs_per_rank.clone(),
        evals: mon.evals,
        verifications: mon.verifications,
        max_rel_drift_bits: mon.max_rel_drift.to_bits(),
    }
}

fn async_opts(chaos: ChaosConfig, skew: f64, seed: u64) -> DistOptions {
    DistOptions {
        max_steps: 40,
        backend: ExecBackend::Async(AsyncOptions {
            advance_probability: 0.6,
            max_lag: 5,
            seed,
            straggler_skew: skew,
        }),
        chaos,
        // Chaos drops protocol messages, so run with the recovery layer on
        // — exercising PR 1's sequencing + audit under async delivery.
        ds_config: DsConfig {
            recovery: RecoveryConfig::standard(),
            ..DsConfig::default()
        },
        monitor: MonitorMode::Maintained { verify_every: 7 },
        ..DistOptions::default()
    }
}

proptest! {
    // Each case runs six full driver runs; keep the count container-sized.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed ⇒ bit-identical `DistReport`, for every method, with and
    /// without chaos, homogeneous and skewed.
    #[test]
    fn async_runs_are_bit_identical_per_seed(
        seed in 0u64..500,
        skew in 0.0f64..0.8,
        chaotic_sel in 0u64..2,
    ) {
        let (a, b, x0, part) = problem(12, 6);
        let chaotic = chaotic_sel == 1;
        let chaos = if chaotic {
            ChaosConfig {
                drop_rate: 0.1,
                duplicate_rate: 0.1,
                delay_rate: 0.1,
                max_delay_epochs: 2,
                seed: seed ^ 0xc0ffee,
                ..ChaosConfig::none()
            }
        } else {
            ChaosConfig::none()
        };
        let opts = async_opts(chaos, skew, seed);
        for m in [
            Method::BlockJacobi,
            Method::ParallelSouthwell,
            Method::DistributedSouthwell,
        ] {
            let r1 = run_method(m, &a, &b, &x0, &part, &opts);
            let r2 = run_method(m, &a, &b, &x0, &part, &opts);
            prop_assert_eq!(
                print_of(&r1),
                print_of(&r2),
                "{:?} not deterministic (seed {}, skew {}, chaos {})",
                m, seed, skew, chaotic
            );
        }
    }

    /// Verified convergence under async delivery: whenever the driver
    /// declares `converged_at`, the *true* residual of the reported
    /// solution meets the target — maintained-norm drift from dropped or
    /// reordered deltas can never fake a convergence verdict.
    #[test]
    fn async_convergence_verdicts_are_always_verified(
        drop_rate in 0.0f64..0.25,
        duplicate_rate in 0.0f64..0.25,
        skew in 0.0f64..0.8,
        seed in 0u64..500,
    ) {
        let (a, b, x0, part) = problem(12, 6);
        let chaos = ChaosConfig {
            drop_rate,
            duplicate_rate,
            seed,
            ..ChaosConfig::none()
        };
        let target = 0.1;
        let mut opts = async_opts(chaos, skew, seed);
        opts.max_steps = 80;
        opts.target_residual = Some(target);
        let rep = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        let true_norm = vecops::norm2(&a.residual(&b, &rep.x));
        if rep.converged_at.is_some() {
            prop_assert!(
                true_norm <= target * (1.0 + 1e-9),
                "declared convergence at tick {:?} but true residual is {} (target {})",
                rep.converged_at, true_norm, target
            );
        }
        // The final record is always exact, converged or not.
        prop_assert!(
            (rep.final_residual() - true_norm).abs() <= 1e-12 * true_norm.max(1.0),
            "final record {} vs true {}",
            rep.final_residual(), true_norm
        );
        // Monitoring ran in maintained mode: cheap evals dominate, exact
        // verifications happened at least on the cadence and the end.
        let mon = rep.monitor_stats();
        prop_assert!(mon.evals > 0);
        prop_assert!(mon.verifications > 0);
        prop_assert!(mon.evals >= mon.verifications);
    }

    /// `redundancy: Some(r = 1)` is the identity placement: bit-identical
    /// `DistReport` to the uncoded run on every backend — sequential and
    /// threaded supersteps and the async scheduler — with chaos on or off.
    #[test]
    fn redundancy_r1_bit_identical_to_uncoded_across_backends(
        seed in 0u64..500,
        chaotic_sel in 0u64..2,
    ) {
        let (a, b, x0, part) = problem(12, 6);
        let chaos = if chaotic_sel == 1 {
            ChaosConfig {
                drop_rate: 0.1,
                duplicate_rate: 0.1,
                delay_rate: 0.1,
                max_delay_epochs: 2,
                seed: seed ^ 0xc0ffee,
                ..ChaosConfig::none()
            }
        } else {
            ChaosConfig::none()
        };
        for backend in [
            ExecBackend::Superstep(ExecMode::Sequential),
            ExecBackend::Superstep(ExecMode::Threaded(3)),
            ExecBackend::Async(AsyncOptions {
                advance_probability: 0.6,
                max_lag: 5,
                seed,
                straggler_skew: 0.5,
            }),
        ] {
            let base = DistOptions { backend, ..async_opts(chaos, 0.5, seed) };
            let coded = DistOptions {
                redundancy: Some(Redundancy::new(1)),
                ..base
            };
            let r1 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &base);
            let r2 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &coded);
            prop_assert_eq!(
                print_of(&r1),
                print_of(&r2),
                "r = 1 diverged from uncoded (seed {}, chaos {})",
                seed, chaotic_sel == 1
            );
        }
    }

    /// Coded placements (r ∈ {2, 3}) on the async backend: deterministic
    /// per seed, redundancy traffic lands in its own class, and verdicts
    /// stay verified (the true residual of the representative solution
    /// matches the final record).
    #[test]
    fn coded_async_runs_are_deterministic_and_verified(
        r_extra in 0usize..2,
        seed in 0u64..500,
        skew in 0.0f64..0.8,
    ) {
        let (a, b, x0, part) = problem(12, 6);
        let r = 2 + r_extra;
        let opts = DistOptions {
            redundancy: Some(Redundancy::new(r)),
            ..async_opts(ChaosConfig::none(), skew, seed)
        };
        let r1 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        let r2 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        prop_assert_eq!(
            print_of(&r1),
            print_of(&r2),
            "r = {} not deterministic (seed {}, skew {})",
            r, seed, skew
        );
        let last = r1.records.last().unwrap();
        prop_assert!(last.msgs_redundancy > 0, "replica fan-out must be accounted");
        prop_assert_eq!(
            last.msgs,
            last.msgs_solve + last.msgs_residual + last.msgs_recovery + last.msgs_redundancy
        );
        let true_norm = vecops::norm2(&a.residual(&b, &r1.x));
        prop_assert!(
            (r1.final_residual() - true_norm).abs() <= 1e-12 * true_norm.max(1.0),
            "final record {} vs true {}",
            r1.final_residual(), true_norm
        );
    }
}
