//! Property-based tests on the multigrid transfer operators and the
//! reordering/IO layers — the pieces whose correctness is a precise
//! algebraic statement.

use distributed_southwell::multigrid::transfer::{prolong, restrict};
use distributed_southwell::sparse::io_bin;
use distributed_southwell::sparse::reorder::{reverse_cuthill_mckee, Permutation};
use distributed_southwell::sparse::{gen, vecops};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prolong_and_restrict_are_adjoint(
        k in 1usize..5,
        seed in 0u64..1000,
    ) {
        // Grids cd = 2^k - 1, fd = 2cd + 1.
        let cd = (1usize << k) - 1;
        let fd = 2 * cd + 1;
        let ec = gen::random_guess(cd * cd, seed);
        let rf = gen::random_guess(fd * fd, seed ^ 0xABCD);
        let lhs = vecops::dot(&prolong(&ec, cd, fd), &rf);
        let rhs = vecops::dot(&ec, &restrict(&rf, fd, cd));
        prop_assert!((lhs - rhs).abs() < 1e-10, "{lhs} vs {rhs}");
    }

    #[test]
    fn prolongation_preserves_smooth_functions_in_the_interior(
        k in 2usize..5,
    ) {
        // Interpolating a linear function reproduces it exactly away from
        // the Dirichlet boundary (bilinear interpolation is exact on
        // linears).
        let cd = (1usize << k) - 1;
        let fd = 2 * cd + 1;
        let lin = |i: usize, j: usize, d: usize| {
            let h = 1.0 / (d + 1) as f64;
            0.3 * (i + 1) as f64 * h + 0.7 * (j + 1) as f64 * h
        };
        let coarse: Vec<f64> = (0..cd * cd)
            .map(|idx| lin(idx % cd, idx / cd, cd))
            .collect();
        let fine = prolong(&coarse, cd, fd);
        // Interior fine points (at least one coarse cell away from the
        // boundary) must match the linear function exactly.
        for j in 2..fd - 2 {
            for i in 2..fd - 2 {
                let expect = lin(i, j, fd);
                let got = fine[j * fd + i];
                prop_assert!(
                    (got - expect).abs() < 1e-12,
                    "({i},{j}): {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn binary_io_roundtrips_any_clique_matrix(
        nx in 3usize..8,
        ny in 3usize..8,
        c in 0.05f64..0.9,
        seed in 0u64..100,
    ) {
        let a = gen::clique_grid2d(nx, ny, gen::CliqueOptions {
            coupling: c,
            weight_jump: 0.4,
            hot_fraction: 0.0,
            hot_coupling: 0.0,
            seed,
        });
        let mut buf = Vec::new();
        io_bin::write_bin(&a, &mut buf).unwrap();
        prop_assert_eq!(io_bin::read_bin(&buf[..]).unwrap(), a);
    }

    #[test]
    fn rcm_is_a_permutation_that_preserves_symmetry(
        nx in 3usize..9,
        ny in 3usize..9,
    ) {
        let a = gen::grid2d_poisson(nx, ny);
        let p = reverse_cuthill_mckee(&a);
        prop_assert_eq!(p.len(), a.nrows());
        // new_of and old_of are inverse.
        for i in 0..p.len() {
            prop_assert_eq!(p.new_of(p.old_of(i)), i);
        }
        let b = p.apply_symmetric(&a).unwrap();
        prop_assert!(b.is_symmetric(1e-12));
        prop_assert_eq!(b.nnz(), a.nnz());
    }

    #[test]
    fn permutation_vec_roundtrip(perm_seed in 0u64..500, n in 2usize..40) {
        // Build a pseudo-random permutation from the seed.
        let mut idx: Vec<usize> = (0..n).collect();
        let mut state = perm_seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        for i in (1..n).rev() {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let j = (state as usize) % (i + 1);
            idx.swap(i, j);
        }
        let p = Permutation::from_new_to_old(idx).unwrap();
        let x = gen::random_guess(n, perm_seed);
        let back = p.apply_vec_inverse(&p.apply_vec(&x));
        prop_assert_eq!(back, x);
    }
}
