//! Property test for the persistent-pool executor's determinism contract:
//! for ANY chaos mix of drops and duplicates, a 64-rank Distributed
//! Southwell run is bit-identical across `ExecMode::Sequential` and the
//! work-stealing pool with 2, 4, and 7 workers — solutions, maintained
//! residuals, per-class message counts, per-rank message counts, and
//! fault counters all match exactly, step by step.
//!
//! Why this holds by construction: rank phases are pure with respect to
//! each other (puts land in per-(origin, target) buckets of the routing
//! index), the epoch close that makes them visible routes each target's
//! buckets in origin order over disjoint per-target state — serially or
//! chunked across the worker pool ([`CloseMode`]) — and the fault injector
//! computes each message's fate as a pure function of its
//! `(epoch, origin, target, index, class)` key, so no steal order, worker
//! count, grain, or close chunking can reorder anything observable. See
//! DESIGN.md ("Persistent worker pool", "Parallel epoch close").

use distributed_southwell::core::dist::{
    distribute, run_method, DistOptions, DistributedSouthwellRank, ExecBackend, Method, MonitorMode,
};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::rma::{
    ChaosConfig, CloseMode, CostModel, ExecMode, Executor, StepStats,
};
use distributed_southwell::sparse::{gen, vecops, CsrMatrix};
use proptest::prelude::*;

/// Everything observable about a finished run, bitwise-comparable.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    /// Concatenated per-rank solution vectors.
    x: Vec<f64>,
    /// Concatenated per-rank maintained residuals.
    r: Vec<f64>,
    /// Per-rank residual norms (squared, as the protocol tracks them).
    norms_sq: Vec<f64>,
    /// (total, solve, residual, recovery) delivered message counts.
    msgs: (u64, u64, u64, u64),
    /// Per-rank delivered message counts.
    msgs_per_rank: Vec<u64>,
    /// (dropped, duplicated) fault counters.
    faults: (u64, u64),
    /// Per-step counters (timing fields excluded by StepStats's PartialEq).
    steps: Vec<StepStats>,
}

/// The §4.2 setup at 64 ranks: 16×16 Poisson (256 rows, 4 rows per rank),
/// unit diagonal, b = 0, fixed guess scaled to a unit initial residual.
fn problem_64() -> (CsrMatrix, Vec<f64>, Vec<f64>) {
    let mut a = gen::grid2d_poisson(16, 16);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, 11);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    (a, b, x0)
}

fn run(mode: ExecMode, close: CloseMode, chaos: ChaosConfig, nsteps: usize) -> Fingerprint {
    let (a, b, x0) = problem_64();
    let part = partition_multilevel(&Graph::from_matrix(&a), 64, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);
    let ranks = DistributedSouthwellRank::build(locals, &norms, &r0);
    let mut ex = Executor::with_chaos(ranks, CostModel::default(), mode, chaos);
    assert!(
        ex.has_routing_index(),
        "DS ranks declare put_targets, so the executor must route target-major"
    );
    ex.set_close_mode(close);
    for _ in 0..nsteps {
        ex.step();
    }
    let faults = ex.stats.total_faults();
    Fingerprint {
        x: ex.ranks().iter().flat_map(|r| r.ls.x.clone()).collect(),
        r: ex.ranks().iter().flat_map(|r| r.ls.r.clone()).collect(),
        norms_sq: ex.ranks().iter().map(|r| r.ls.residual_norm_sq()).collect(),
        msgs: (
            ex.stats.total_msgs(),
            ex.stats.total_msgs_solve(),
            ex.stats.total_msgs_residual(),
            ex.stats.total_msgs_recovery(),
        ),
        msgs_per_rank: ex.stats.msgs_per_rank.clone(),
        faults: (faults.dropped.total(), faults.duplicated.total()),
        steps: ex.stats.steps.clone(),
    }
}

#[test]
fn pool_is_bit_identical_to_sequential_without_chaos() {
    let reference = run(
        ExecMode::Sequential,
        CloseMode::Serial,
        ChaosConfig::none(),
        10,
    );
    for nworkers in [2usize, 4, 7] {
        for close in [CloseMode::Serial, CloseMode::Parallel] {
            let pooled = run(ExecMode::Threaded(nworkers), close, ChaosConfig::none(), 10);
            assert_eq!(
                reference, pooled,
                "Threaded({nworkers}) × {close:?} diverged on a clean link"
            );
        }
    }
}

proptest! {
    // Each case runs four full executors; keep the count container-sized.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pool_is_bit_identical_to_sequential_under_chaos(
        drop_rate in 0.0f64..0.3,
        duplicate_rate in 0.0f64..0.3,
        seed in 0u64..1000,
    ) {
        let chaos = ChaosConfig {
            drop_rate,
            duplicate_rate,
            seed,
            ..ChaosConfig::none()
        };
        let reference = run(ExecMode::Sequential, CloseMode::Serial, chaos, 10);
        for nworkers in [2usize, 4, 7] {
            for close in [CloseMode::Serial, CloseMode::Parallel] {
                let pooled = run(ExecMode::Threaded(nworkers), close, chaos, 10);
                prop_assert_eq!(
                    &reference,
                    &pooled,
                    "Threaded({}) × {:?} diverged from Sequential (drop {:.3}, dup {:.3}, seed {})",
                    nworkers,
                    close,
                    drop_rate,
                    duplicate_rate,
                    seed
                );
            }
        }
    }
}

/// Everything a driver run reports, bitwise-comparable: the per-step
/// residual records (maintained or exact depending on the monitor mode),
/// the gathered solution, the verdicts, and the monitor accounting.
#[derive(Debug, PartialEq)]
struct ReportPrint {
    records: Vec<(usize, u64)>,
    x: Vec<u64>,
    converged_at: Option<usize>,
    deadlocked: bool,
    diverged: bool,
    evals: u64,
    verifications: u64,
    max_rel_drift_bits: u64,
}

fn drive_print(
    mode: ExecMode,
    close_mode: CloseMode,
    monitor: MonitorMode,
    chaos: ChaosConfig,
) -> ReportPrint {
    let (a, b, x0) = problem_64();
    let part = partition_multilevel(&Graph::from_matrix(&a), 64, MultilevelOptions::default());
    let opts = DistOptions {
        max_steps: 15,
        target_residual: Some(1e-4),
        backend: ExecBackend::Superstep(mode),
        close_mode,
        monitor,
        chaos,
        ..DistOptions::default()
    };
    let rep = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
    let mon = rep.monitor_stats();
    ReportPrint {
        records: rep
            .records
            .iter()
            .map(|r| (r.step, r.residual_norm.to_bits()))
            .collect(),
        x: rep.x.iter().map(|v| v.to_bits()).collect(),
        converged_at: rep.converged_at,
        deadlocked: rep.deadlocked,
        diverged: rep.diverged,
        evals: mon.evals,
        verifications: mon.verifications,
        max_rel_drift_bits: mon.max_rel_drift.to_bits(),
    }
}

/// The determinism contract lifted to the driver: in BOTH monitor modes,
/// a full `drive()` run — records, solution, verdicts, monitor counters —
/// is bit-identical across the sequential executor, the persistent pool
/// (with the epoch close serial and parallel), and the legacy
/// spawn-per-phase scheduler, with and without chaos.
#[test]
fn drive_is_bit_identical_across_exec_modes_in_both_monitor_modes() {
    let chaotic = ChaosConfig {
        drop_rate: 0.15,
        duplicate_rate: 0.1,
        seed: 99,
        ..ChaosConfig::none()
    };
    for monitor in [
        MonitorMode::Exact,
        MonitorMode::Maintained { verify_every: 3 },
        MonitorMode::default(),
    ] {
        for chaos in [ChaosConfig::none(), chaotic] {
            let reference = drive_print(ExecMode::Sequential, CloseMode::Serial, monitor, chaos);
            for (mode, close) in [
                (ExecMode::Threaded(2), CloseMode::Parallel),
                (ExecMode::Threaded(4), CloseMode::Parallel),
                (ExecMode::Threaded(4), CloseMode::Serial),
                (ExecMode::Threaded(2), CloseMode::Auto),
                (ExecMode::ThreadedSpawn(3), CloseMode::Auto),
            ] {
                assert_eq!(
                    reference,
                    drive_print(mode, close, monitor, chaos),
                    "{mode:?} × {close:?} diverged from Sequential under {monitor:?}"
                );
            }
        }
    }
}
