//! Asynchronous execution of the distributed solvers: ranks progressing at
//! different speeds, with messages arriving whenever the target next
//! reaches a phase boundary — the regime the paper's Casper-based RMA
//! implementation actually runs in. Distributed Southwell treats all its
//! neighbor data as estimates, so it tolerates the staleness.

use distributed_southwell::core::dist::{distribute, BlockJacobiRank, DistributedSouthwellRank};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::rma::{AsyncExecutor, AsyncOptions};
use distributed_southwell::sparse::{gen, vecops};

fn problem(nx: usize, seed: u64) -> (distributed_southwell::sparse::CsrMatrix, Vec<f64>, Vec<f64>) {
    let mut a = gen::grid2d_poisson(nx, nx);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, seed);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    (a, b, x0)
}

fn residual_of<R>(
    ranks: &[R],
    ls_of: impl Fn(&R) -> &distributed_southwell::core::dist::LocalSystem,
    a: &distributed_southwell::sparse::CsrMatrix,
    b: &[f64],
) -> f64 {
    let mut x = vec![0.0; a.nrows()];
    for r in ranks {
        let ls = ls_of(r);
        for (li, &g) in ls.rows.iter().enumerate() {
            x[g] = ls.x[li];
        }
    }
    vecops::norm2(&a.residual(b, &x))
}

#[test]
fn distributed_southwell_converges_under_async_scheduling() {
    let (a, b, x0) = problem(16, 3);
    let part = partition_multilevel(&Graph::from_matrix(&a), 8, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);
    let ranks = DistributedSouthwellRank::build(locals, &norms, &r0);
    let mut ex = AsyncExecutor::new(
        ranks,
        AsyncOptions {
            advance_probability: 0.6,
            max_lag: 6,
            seed: 5,
        },
    );
    ex.run_steps(400, 200_000);
    let res = residual_of(ex.ranks(), |r| &r.ls, &a, &b);
    assert!(res < 1e-3, "async DS should converge, residual {res}");
}

#[test]
fn block_jacobi_becomes_asynchronous_jacobi_and_still_converges_on_poisson() {
    let (a, b, x0) = problem(12, 4);
    let part = partition_multilevel(&Graph::from_matrix(&a), 6, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let ranks = BlockJacobiRank::build(locals);
    let mut ex = AsyncExecutor::new(
        ranks,
        AsyncOptions {
            advance_probability: 0.5,
            max_lag: 3,
            seed: 9,
        },
    );
    ex.run_steps(300, 100_000);
    let res = residual_of(ex.ranks(), |r| &r.ls, &a, &b);
    assert!(
        res < 1e-4,
        "asynchronous block Jacobi should converge on Poisson, residual {res}"
    );
}

#[test]
fn async_and_superstep_agree_when_everyone_always_advances() {
    // With advance probability 1 and a lag bound that never binds, the
    // async scheduler degenerates into lock-step supersteps.
    use distributed_southwell::rma::{CostModel, ExecMode, Executor};
    let (a, b, x0) = problem(10, 7);
    let part = partition_multilevel(&Graph::from_matrix(&a), 5, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);

    let mut sync_ex = Executor::new(
        DistributedSouthwellRank::build(locals.clone(), &norms, &r0),
        CostModel::default(),
        ExecMode::Sequential,
    );
    for _ in 0..12 {
        sync_ex.step();
    }

    let mut async_ex = AsyncExecutor::new(
        DistributedSouthwellRank::build(locals, &norms, &r0),
        AsyncOptions {
            advance_probability: 1.0,
            max_lag: 1_000_000,
            seed: 0,
        },
    );
    async_ex.run_steps(12, 1_000);

    let xs: Vec<f64> = sync_ex
        .ranks()
        .iter()
        .flat_map(|r| r.ls.x.clone())
        .collect();
    let xa: Vec<f64> = async_ex
        .ranks()
        .iter()
        .flat_map(|r| r.ls.x.clone())
        .collect();
    assert_eq!(xs, xa, "lock-step async must equal the superstep executor");
}
