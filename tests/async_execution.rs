//! Asynchronous execution of the distributed solvers: ranks progressing at
//! different speeds, with messages arriving whenever the target next
//! reaches a phase boundary — the regime the paper's Casper-based RMA
//! implementation actually runs in. Distributed Southwell treats all its
//! neighbor data as estimates, so it tolerates the staleness.
//!
//! Includes the cross-executor fate-parity suite: with advance probability
//! 1 and an unbinding lag bound, the async scheduler's ticks coincide with
//! the superstep executor's epochs, so the pure fate function
//! `(epoch, origin, target, index, class)` must inject the *same* drops,
//! duplicates, and delays on both substrates, producing bit-identical
//! solver state and fault counters.

use distributed_southwell::core::dist::{distribute, BlockJacobiRank, DistributedSouthwellRank};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::rma::{
    AsyncExecutor, AsyncOptions, ChaosConfig, CostModel, ExecMode, Executor,
};
use distributed_southwell::sparse::{gen, vecops};

fn problem(nx: usize, seed: u64) -> (distributed_southwell::sparse::CsrMatrix, Vec<f64>, Vec<f64>) {
    let mut a = gen::grid2d_poisson(nx, nx);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, seed);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    (a, b, x0)
}

fn residual_of<R>(
    ranks: &[R],
    ls_of: impl Fn(&R) -> &distributed_southwell::core::dist::LocalSystem,
    a: &distributed_southwell::sparse::CsrMatrix,
    b: &[f64],
) -> f64 {
    let mut x = vec![0.0; a.nrows()];
    for r in ranks {
        let ls = ls_of(r);
        for (li, &g) in ls.rows.iter().enumerate() {
            x[g] = ls.x[li];
        }
    }
    vecops::norm2(&a.residual(b, &x))
}

#[test]
fn distributed_southwell_converges_under_async_scheduling() {
    let (a, b, x0) = problem(16, 3);
    let part = partition_multilevel(&Graph::from_matrix(&a), 8, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);
    let ranks = DistributedSouthwellRank::build(locals, &norms, &r0);
    let mut ex = AsyncExecutor::new(
        ranks,
        AsyncOptions {
            advance_probability: 0.6,
            max_lag: 6,
            seed: 5,
            ..AsyncOptions::default()
        },
    );
    ex.run_steps(400, 200_000).expect("budget is ample");
    let res = residual_of(ex.ranks(), |r| &r.ls, &a, &b);
    assert!(res < 1e-3, "async DS should converge, residual {res}");
}

#[test]
fn distributed_southwell_converges_under_straggler_skew() {
    // The heterogeneous regime: some ranks advance at a fraction of the
    // base probability. Convergence slows but survives, and the slowest
    // rank still progresses (the lag bound throttles the fast ones).
    let (a, b, x0) = problem(16, 3);
    let part = partition_multilevel(&Graph::from_matrix(&a), 8, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);
    let ranks = DistributedSouthwellRank::build(locals, &norms, &r0);
    let mut ex = AsyncExecutor::new(
        ranks,
        AsyncOptions {
            advance_probability: 0.7,
            max_lag: 8,
            seed: 11,
            straggler_skew: 0.8,
        },
    );
    ex.run_steps(400, 400_000).expect("budget is ample");
    let res = residual_of(ex.ranks(), |r| &r.ls, &a, &b);
    assert!(
        res < 1e-3,
        "skewed async DS should converge, residual {res}"
    );
    let min = ex.clocks().iter().min().unwrap();
    let max = ex.clocks().iter().max().unwrap();
    assert!(max - min <= 8, "lag bound must hold under skew");
}

#[test]
fn block_jacobi_becomes_asynchronous_jacobi_and_still_converges_on_poisson() {
    let (a, b, x0) = problem(12, 4);
    let part = partition_multilevel(&Graph::from_matrix(&a), 6, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let ranks = BlockJacobiRank::build(locals);
    let mut ex = AsyncExecutor::new(
        ranks,
        AsyncOptions {
            advance_probability: 0.5,
            max_lag: 3,
            seed: 9,
            ..AsyncOptions::default()
        },
    );
    ex.run_steps(300, 100_000).expect("budget is ample");
    let res = residual_of(ex.ranks(), |r| &r.ls, &a, &b);
    assert!(
        res < 1e-4,
        "asynchronous block Jacobi should converge on Poisson, residual {res}"
    );
}

#[test]
fn async_and_superstep_agree_when_everyone_always_advances() {
    // With advance probability 1 and a lag bound that never binds, the
    // async scheduler degenerates into lock-step supersteps.
    let (a, b, x0) = problem(10, 7);
    let part = partition_multilevel(&Graph::from_matrix(&a), 5, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);

    let mut sync_ex = Executor::new(
        DistributedSouthwellRank::build(locals.clone(), &norms, &r0),
        CostModel::default(),
        ExecMode::Sequential,
    );
    for _ in 0..12 {
        sync_ex.step();
    }

    let mut async_ex = AsyncExecutor::new(
        DistributedSouthwellRank::build(locals, &norms, &r0),
        AsyncOptions {
            advance_probability: 1.0,
            max_lag: 1_000_000,
            seed: 0,
            ..AsyncOptions::default()
        },
    );
    async_ex.run_steps(12, 1_000).expect("lock-step: 24 ticks");

    let xs: Vec<f64> = sync_ex
        .ranks()
        .iter()
        .flat_map(|r| r.ls.x.clone())
        .collect();
    let xa: Vec<f64> = async_ex
        .ranks()
        .iter()
        .flat_map(|r| r.ls.x.clone())
        .collect();
    assert_eq!(xs, xa, "lock-step async must equal the superstep executor");
}

/// Runs DS for `nsteps` on both substrates under the same chaos config
/// (async in its lock-step degeneration, where ticks equal epochs) and
/// asserts bit-identical solver state plus identical fault and message
/// accounting — the fate function must make the same per-message decision
/// on both executors.
fn assert_fate_parity(chaos: ChaosConfig, nsteps: usize) {
    let (a, b, x0) = problem(12, 7);
    let part = partition_multilevel(&Graph::from_matrix(&a), 6, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);

    let mut sync_ex = Executor::with_chaos(
        DistributedSouthwellRank::build(locals.clone(), &norms, &r0),
        CostModel::default(),
        ExecMode::Sequential,
        chaos,
    );
    for _ in 0..nsteps {
        sync_ex.step();
    }

    let mut async_ex = AsyncExecutor::with_chaos(
        DistributedSouthwellRank::build(locals, &norms, &r0),
        AsyncOptions {
            advance_probability: 1.0,
            max_lag: 1_000_000,
            seed: 0,
            ..AsyncOptions::default()
        },
        chaos,
    )
    .expect("message faults are supported");
    async_ex
        .run_steps(nsteps, 10 * nsteps)
        .expect("lock-step ticks");

    let state = |ranks: &[DistributedSouthwellRank]| -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        (
            ranks
                .iter()
                .flat_map(|r| r.ls.x.iter().map(|v| v.to_bits()))
                .collect(),
            ranks
                .iter()
                .flat_map(|r| r.ls.r.iter().map(|v| v.to_bits()))
                .collect(),
            ranks
                .iter()
                .map(|r| r.ls.residual_norm_sq().to_bits())
                .collect(),
        )
    };
    assert_eq!(
        state(sync_ex.ranks()),
        state(async_ex.ranks()),
        "solver state diverged under {chaos:?}"
    );
    let sf = sync_ex.stats.total_faults();
    let af = async_ex.stats.total_faults();
    assert_eq!(sf.dropped, af.dropped, "drop accounting under {chaos:?}");
    assert_eq!(
        sf.duplicated, af.duplicated,
        "duplicate accounting under {chaos:?}"
    );
    assert_eq!(sf.delayed, af.delayed, "delay accounting under {chaos:?}");
    assert_eq!(
        (
            sync_ex.stats.total_msgs(),
            sync_ex.stats.total_msgs_solve(),
            sync_ex.stats.total_msgs_residual(),
            sync_ex.stats.total_msgs_recovery(),
        ),
        (
            async_ex.stats.total_msgs(),
            async_ex.stats.total_msgs_solve(),
            async_ex.stats.total_msgs_residual(),
            async_ex.stats.total_msgs_recovery(),
        ),
        "per-class message accounting under {chaos:?}"
    );
    assert_eq!(
        sync_ex.stats.msgs_per_rank, async_ex.stats.msgs_per_rank,
        "per-rank message accounting under {chaos:?}"
    );
}

#[test]
fn fate_semantics_are_identical_across_executors() {
    let combos = [
        ChaosConfig {
            drop_rate: 0.25,
            seed: 13,
            ..ChaosConfig::none()
        },
        ChaosConfig {
            duplicate_rate: 0.25,
            seed: 13,
            ..ChaosConfig::none()
        },
        ChaosConfig {
            delay_rate: 0.25,
            max_delay_epochs: 3,
            seed: 13,
            ..ChaosConfig::none()
        },
        // Overlapping fates: a surviving message may be both duplicated
        // (the copy lands now) and delayed (the original lands late).
        ChaosConfig {
            drop_rate: 0.15,
            duplicate_rate: 0.2,
            delay_rate: 0.2,
            max_delay_epochs: 2,
            seed: 29,
            ..ChaosConfig::none()
        },
    ];
    for chaos in combos {
        assert_fate_parity(chaos, 14);
    }
}
